package dvecap

import (
	"testing"
)

func TestNewScenarioDefaults(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Seed: 1, Correlation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := scn.Config()
	if cfg.Scenario() != "20s-80z-1000c-500cp" {
		t.Fatalf("default scenario = %s", cfg.Scenario())
	}
	if scn.NumClients() != 1000 {
		t.Fatalf("clients = %d", scn.NumClients())
	}
}

func TestNewScenarioNotation(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Seed: 1, Notation: "5s-15z-200c-100cp"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := scn.Config()
	if cfg.Servers != 5 || cfg.Zones != 15 || cfg.Clients != 200 {
		t.Fatalf("notation not applied: %+v", cfg)
	}
}

func TestNewScenarioOverrides(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{
		Seed: 2, Servers: 8, Zones: 16, Clients: 300, TotalCapacityMbps: 200,
		DelayBoundMs: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := scn.Config()
	if cfg.Servers != 8 || cfg.Zones != 16 || cfg.Clients != 300 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.DelayBoundMs != 200 {
		t.Fatalf("bound = %v", cfg.DelayBoundMs)
	}
	if cfg.Correlation != 0 {
		t.Fatalf("zero correlation not applied: %v", cfg.Correlation)
	}
}

func TestNewScenarioNegativeCorrelationKeepsDefault(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Seed: 1, Correlation: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := scn.Config().Correlation; got != 0.5 {
		t.Fatalf("correlation = %v, want default 0.5", got)
	}
}

func TestNewScenarioRejectsBadInput(t *testing.T) {
	if _, err := NewScenario(ScenarioParams{Notation: "garbage"}); err == nil {
		t.Fatal("bad notation accepted")
	}
	if _, err := NewScenario(ScenarioParams{Correlation: 2}); err == nil {
		t.Fatal("correlation > 1 accepted")
	}
}

func TestAssignAllAlgorithms(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Seed: 3, Notation: "10s-30z-400c-200cp", Correlation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Algorithms() {
		res, err := scn.Assign(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PQoS < 0 || res.PQoS > 1 {
			t.Fatalf("%s pQoS %v", name, res.PQoS)
		}
		if res.Clients != 400 || len(res.Delays) != 400 {
			t.Fatalf("%s delays/clients wrong", name)
		}
		if len(res.ZoneServer) != 30 || len(res.ClientContact) != 400 {
			t.Fatalf("%s raw assignment shape wrong", name)
		}
	}
}

func TestAssignUnknownAlgorithm(t *testing.T) {
	scn, _ := NewScenario(ScenarioParams{Seed: 1, Notation: "5s-15z-200c-100cp"})
	if _, err := scn.Assign("Magic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := scn.AssignWithEstimationError("Magic", 1.2); err == nil {
		t.Fatal("unknown algorithm accepted (noisy)")
	}
}

func TestAssignWithEstimationError(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Seed: 4, Notation: "10s-30z-400c-200cp", Correlation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := scn.AssignWithEstimationError("GreZ-GreC", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PQoS <= 0 || res.PQoS > 1 {
		t.Fatalf("noisy pQoS %v", res.PQoS)
	}
	if _, err := scn.AssignWithEstimationError("GreZ-GreC", 0.5); err == nil {
		t.Fatal("error factor < 1 accepted")
	}
}

func TestChurnThenAssign(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Seed: 5, Notation: "10s-30z-400c-200cp", Correlation: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.Churn(50, 30, 40); err != nil {
		t.Fatal(err)
	}
	if scn.NumClients() != 420 {
		t.Fatalf("clients after churn = %d", scn.NumClients())
	}
	res, err := scn.Assign("GreZ-GreC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 420 {
		t.Fatalf("result clients = %d", res.Clients)
	}
}

func TestUSBackboneScenario(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{
		Seed: 6, Notation: "5s-15z-200c-100cp", UseUSBackbone: true, Correlation: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := scn.Assign("GreZ-GreC")
	if err != nil {
		t.Fatal(err)
	}
	if res.PQoS <= 0 {
		t.Fatalf("backbone pQoS %v", res.PQoS)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	build := func() *Result {
		scn, err := NewScenario(ScenarioParams{Seed: 9, Notation: "10s-30z-400c-200cp", Correlation: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := scn.Assign("GreZ-GreC")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	if a.PQoS != b.PQoS || a.Utilization != b.Utilization {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.PQoS, a.Utilization, b.PQoS, b.Utilization)
	}
	for i := range a.ZoneServer {
		if a.ZoneServer[i] != b.ZoneServer[i] {
			t.Fatalf("zone %d differs", i)
		}
	}
}

func TestPaperOrderingHoldsThroughFacade(t *testing.T) {
	scn, err := NewScenario(ScenarioParams{Seed: 12, Correlation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		res, err := scn.Assign(name)
		if err != nil {
			t.Fatal(err)
		}
		return res.PQoS
	}
	if get("GreZ-GreC") < get("RanZ-VirC") {
		t.Fatal("GreZ-GreC lost to RanZ-VirC; paper's ordering violated")
	}
}
