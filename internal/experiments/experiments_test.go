package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dvecap/internal/dve"
)

// smokeSetup keeps replication counts small so the full suite stays fast;
// the real paper-scale runs happen in the benchmark harness and capsim.
func smokeSetup() Setup {
	s := DefaultSetup()
	s.Reps = 3
	return s
}

func TestTable1Smoke(t *testing.T) {
	res, err := Table1(smokeSetup(), Table1Options{
		Scenarios: []string{"5s-15z-200c-100cp", "10s-30z-400c-200cp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, n := range res.Names {
			c := row.Cells[n]
			if c.PQoS.N() != 3 {
				t.Fatalf("%s/%s aggregated %d reps", row.Scenario, n, c.PQoS.N())
			}
			if m := c.PQoS.Mean(); m < 0 || m > 1 {
				t.Fatalf("%s/%s pQoS %v", row.Scenario, n, m)
			}
			if r := c.R.Mean(); r <= 0 || r > 1.5 {
				t.Fatalf("%s/%s R %v", row.Scenario, n, r)
			}
		}
	}
	out := res.String()
	if !strings.Contains(out, "5s-15z-200c-100cp") || !strings.Contains(out, "GreZ-GreC") {
		t.Fatalf("rendering missing content:\n%s", out)
	}
}

func TestTable1OrderingHolds(t *testing.T) {
	// The paper's central claim: GreZ-* beats RanZ-* on pQoS; GreZ-GreC is
	// the best of the four. With a few reps the gap is wide enough to
	// assert on the default scenario.
	s := smokeSetup()
	s.Reps = 5
	res, err := Table1(s, Table1Options{Scenarios: []string{"20s-80z-1000c-500cp"}})
	if err != nil {
		t.Fatal(err)
	}
	cells := res.Rows[0].Cells
	gzgc := cells["GreZ-GreC"].PQoS.Mean()
	gzvc := cells["GreZ-VirC"].PQoS.Mean()
	rzgc := cells["RanZ-GreC"].PQoS.Mean()
	rzvc := cells["RanZ-VirC"].PQoS.Mean()
	if gzgc < gzvc {
		t.Fatalf("GreZ-GreC (%v) below GreZ-VirC (%v)", gzgc, gzvc)
	}
	if gzvc <= rzvc {
		t.Fatalf("GreZ-VirC (%v) not above RanZ-VirC (%v)", gzvc, rzvc)
	}
	if rzgc <= rzvc {
		t.Fatalf("RanZ-GreC (%v) not above RanZ-VirC (%v)", rzgc, rzvc)
	}
	if gzgc <= rzgc {
		t.Fatalf("GreZ-GreC (%v) not above RanZ-GreC (%v)", gzgc, rzgc)
	}
	// VirC refinements add no forwarding load: R(GreZ-VirC) < R(GreZ-GreC).
	if cells["GreZ-VirC"].R.Mean() > cells["GreZ-GreC"].R.Mean() {
		t.Fatalf("VirC consumed more bandwidth than GreC")
	}
}

func TestTable1WithLP(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Table1(s, Table1Options{
		IncludeLP:  true,
		LPReps:     2,
		LPDeadline: 30 * time.Second,
		Scenarios:  []string{"5s-15z-200c-100cp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.LP == nil {
		t.Fatal("LP column missing")
	}
	// The exact solution can never lose to the heuristics on the IAP+RAP
	// objective; on pQoS it should be at least competitive with GreZ-GreC
	// minus sampling noise.
	if row.LP.PQoS.Mean() < row.Cells["GreZ-GreC"].PQoS.Mean()-0.1 {
		t.Fatalf("exact pQoS %v far below GreZ-GreC %v",
			row.LP.PQoS.Mean(), row.Cells["GreZ-GreC"].PQoS.Mean())
	}
}

func TestFig4Smoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Fig4(s, Fig4Options{Scenario: "10s-30z-400c-200cp", Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, series := range res.Series {
		if len(series.Points) != 11 {
			t.Fatalf("%s has %d points", series.Algorithm, len(series.Points))
		}
		last := -1.0
		for _, pt := range series.Points {
			if pt.Y < last-1e-12 {
				t.Fatalf("%s CDF not monotone", series.Algorithm)
			}
			last = pt.Y
			if pt.Y < 0 || pt.Y > 1 {
				t.Fatalf("%s CDF out of range", series.Algorithm)
			}
		}
		if series.PAtBound <= 0 {
			t.Fatalf("%s pQoS at bound = %v", series.Algorithm, series.PAtBound)
		}
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Fatal("rendering broken")
	}
}

func TestFig4BestAlgorithmDominatesAtBound(t *testing.T) {
	s := smokeSetup()
	res, err := Fig4(s, Fig4Options{Scenario: "10s-30z-400c-200cp", Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	at := map[string]float64{}
	for _, series := range res.Series {
		at[series.Algorithm] = series.PAtBound
	}
	if at["GreZ-GreC"] < at["RanZ-VirC"] {
		t.Fatalf("GreZ-GreC CDF at bound (%v) below RanZ-VirC (%v)",
			at["GreZ-GreC"], at["RanZ-VirC"])
	}
}

func TestFig5Smoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Fig5(s, Fig5Options{
		Correlations: []float64{0, 1},
		Scenario:     "10s-30z-400c-200cp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Bound != 200 {
		t.Fatalf("bound = %v, want the paper's 200", res.Bound)
	}
	// GreZ-* must benefit from perfect correlation.
	lo := res.Points[0].Cells["GreZ-GreC"].PQoS.Mean()
	hi := res.Points[1].Cells["GreZ-GreC"].PQoS.Mean()
	if hi < lo {
		t.Fatalf("GreZ-GreC did not improve with correlation: %v → %v", lo, hi)
	}
	if !strings.Contains(res.String(), "Figure 5(a)") {
		t.Fatal("rendering broken")
	}
}

func TestFig6Smoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Fig6(s, Fig6Options{Scenario: "10s-30z-400c-200cp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Virtual-world clustering inflates bandwidth demand (quadratic per
	// zone): utilisation for type 3 (VW clustered) must exceed type 1
	// (uniform) for the no-forwarding algorithm.
	uni := res.Points[0].Cells["GreZ-VirC"].R.Mean()
	vw := res.Points[2].Cells["GreZ-VirC"].R.Mean()
	if vw <= uni {
		t.Fatalf("VW clustering did not raise utilisation: %v vs %v", vw, uni)
	}
	if !strings.Contains(res.String(), "Figure 6(b)") {
		t.Fatal("rendering broken")
	}
}

func TestTable3Smoke(t *testing.T) {
	s := smokeSetup()
	res, err := Table3(s, Table3Options{
		Scenario: "10s-30z-400c-200cp",
		Join:     80, Leave: 80, Move: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Before.N() != 3 {
			t.Fatalf("%s aggregated %d reps", row.Algorithm, row.Before.N())
		}
		// Re-execution must not be worse than the degraded assignment for
		// the delay-aware algorithms (the paper's core point).
		if row.Algorithm == "GreZ-GreC" && row.Executed.Mean() < row.After.Mean()-0.02 {
			t.Fatalf("%s: executed %v below after %v",
				row.Algorithm, row.Executed.Mean(), row.After.Mean())
		}
	}
	if !strings.Contains(res.String(), "Table 3") {
		t.Fatal("rendering broken")
	}
}

func TestTable4Smoke(t *testing.T) {
	s := smokeSetup()
	res, err := Table4(s, Table4Options{Scenario: "10s-30z-400c-200cp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 {
		t.Fatalf("columns = %d", len(res.Columns))
	}
	for _, col := range res.Columns {
		for _, n := range res.Names {
			if m := col.Cells[n].PQoS.Mean(); m < 0 || m > 1 {
				t.Fatalf("%s/%s pQoS %v", col.Model.Name, n, m)
			}
		}
	}
	// Larger error cannot help the delay-aware algorithms.
	king := res.Columns[0].Cells["GreZ-GreC"].PQoS.Mean()
	idmaps := res.Columns[1].Cells["GreZ-GreC"].PQoS.Mean()
	if idmaps > king+0.05 {
		t.Fatalf("more noise improved GreZ-GreC: %v → %v", king, idmaps)
	}
	if !strings.Contains(res.String(), "Table 4") {
		t.Fatal("rendering broken")
	}
}

func TestAblationSmoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Ablation(s, AblationOptions{Scenario: "10s-30z-400c-200cp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0]
	withLS := res.Rows[2]
	if withLS.PQoS.Mean() < base.PQoS.Mean()-1e-9 {
		t.Fatalf("local search hurt pQoS: %v vs %v", withLS.PQoS.Mean(), base.PQoS.Mean())
	}
	if !strings.Contains(res.String(), "Ablation") {
		t.Fatal("rendering broken")
	}
}

func TestRuntimeSmoke(t *testing.T) {
	s := smokeSetup()
	res, err := Runtime(s, RuntimeOptions{
		Scenarios: []string{"5s-15z-200c-100cp", "10s-30z-400c-200cp"},
		IncludeLP: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for name, d := range row.Heuristic {
			if d <= 0 {
				t.Fatalf("%s/%s has zero duration", row.Scenario, name)
			}
			if d > time.Second {
				t.Fatalf("%s/%s took %v; the paper promises < 1 s", row.Scenario, name, d)
			}
		}
	}
	if !strings.Contains(res.String(), "Runtime") {
		t.Fatal("rendering broken")
	}
}

func TestUSBackboneSetupWorks(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	s.Topology = TopoUSBackbone
	res, err := Table1(s, Table1Options{Scenarios: []string{"5s-15z-200c-100cp"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Names {
		if m := res.Rows[0].Cells[n].PQoS.Mean(); m < 0 || m > 1 {
			t.Fatalf("backbone %s pQoS %v", n, m)
		}
	}
}

func TestSetupDeterminism(t *testing.T) {
	run := func() string {
		s := smokeSetup()
		s.Reps = 2
		res, err := Table1(s, Table1Options{Scenarios: []string{"5s-15z-200c-100cp"}})
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical setups produced different tables:\n%s\nvs\n%s", a, b)
	}
}

func TestUnknownTopologyRejected(t *testing.T) {
	s := smokeSetup()
	s.Topology = "nonsense"
	if _, err := Table1(s, Table1Options{Scenarios: []string{"5s-15z-200c-100cp"}}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBaselinesSmoke(t *testing.T) {
	s := smokeSetup()
	res, err := Baselines(s, BaselinesOptions{Scenario: "10s-30z-400c-200cp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 5 {
		t.Fatalf("names = %v", res.Names)
	}
	// The paper's delay-aware pipeline must dominate blind load balancing.
	if res.Cells["GreZ-GreC"].PQoS.Mean() <= res.Cells["LoadZ-VirC"].PQoS.Mean() {
		t.Fatalf("GreZ-GreC (%v) did not beat LoadZ-VirC (%v)",
			res.Cells["GreZ-GreC"].PQoS.Mean(), res.Cells["LoadZ-VirC"].PQoS.Mean())
	}
	if !strings.Contains(res.String(), "baselines") {
		t.Fatal("rendering broken")
	}
}

func TestStalenessSmoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Staleness(s, StalenessOptions{
		Periods:    []float64{30, 300},
		HorizonSec: 600,
		Scenario:   "10s-30z-400c-200cp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	fast, slow := res.Points[0], res.Points[1]
	// More frequent reassignment must not give a worse time-averaged pQoS
	// (allowing a little sampling noise).
	if fast.MeanPQoS.Mean() < slow.MeanPQoS.Mean()-0.05 {
		t.Fatalf("frequent reassignment worse: %v vs %v",
			fast.MeanPQoS.Mean(), slow.MeanPQoS.Mean())
	}
	if !strings.Contains(res.String(), "Staleness") {
		t.Fatal("rendering broken")
	}
}

func TestRobustnessSmoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Robustness(s, RobustnessOptions{Scenario: "10s-30z-400c-200cp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's ordering must hold on every substrate — that is the
	// point of the cross-check.
	for _, row := range res.Rows {
		gz := row.Cells["GreZ-GreC"].PQoS.Mean()
		rz := row.Cells["RanZ-VirC"].PQoS.Mean()
		if gz <= rz {
			t.Fatalf("%s: GreZ-GreC (%v) did not beat RanZ-VirC (%v)", row.Topology, gz, rz)
		}
	}
	if !strings.Contains(res.String(), "robustness") {
		t.Fatal("rendering broken")
	}
}

func TestFlowCheckSmoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := FlowCheck(s, FlowCheckOptions{
		Scenario:  "10s-30z-400c-200cp",
		Headrooms: []float64{4, 1.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || len(res.Knee) != 2 {
		t.Fatalf("shape: %d rows, %d knee points", len(res.Rows), len(res.Knee))
	}
	// At 4x headroom the models agree closely; at 1.02x queueing bites.
	wide, tight := res.Knee[0], res.Knee[1]
	wideGap := wide.Analytic.Mean() - wide.Simulated.Mean()
	tightGap := tight.Analytic.Mean() - tight.Simulated.Mean()
	if wideGap > 0.05 {
		t.Fatalf("models disagree at 4x headroom: gap %v", wideGap)
	}
	if tightGap <= wideGap {
		t.Fatalf("queueing cost did not grow toward the knee: %v vs %v", tightGap, wideGap)
	}
	if !strings.Contains(res.String(), "Knee profile") {
		t.Fatal("rendering broken")
	}
}

func TestRepairSmoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Repair(s, RepairOptions{
		HorizonSec: 600,
		Scenario:   "10s-30z-400c-200cp",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar of the repair subsystem: time-averaged quality
	// within 2% of full-resolve mode, with strictly fewer zone handoffs.
	if res.Repair.MeanPQoS.Mean() < res.Full.MeanPQoS.Mean()-0.02 {
		t.Fatalf("repair pQoS %.3f trails full-resolve %.3f by more than 0.02",
			res.Repair.MeanPQoS.Mean(), res.Full.MeanPQoS.Mean())
	}
	if res.Repair.ZoneHandoffs.Mean() >= res.Full.ZoneHandoffs.Mean() {
		t.Fatalf("repair handed off %.1f zones/run, full-resolve %.1f — want strictly fewer",
			res.Repair.ZoneHandoffs.Mean(), res.Full.ZoneHandoffs.Mean())
	}
	if res.Repair.FullSolves.Mean() >= res.Full.FullSolves.Mean() {
		t.Fatalf("repair ran %.1f full solves/run, full-resolve %.1f",
			res.Repair.FullSolves.Mean(), res.Full.FullSolves.Mean())
	}
	if !strings.Contains(res.String(), "Repair") {
		t.Fatal("rendering broken")
	}
}

// TestTrafficSmoke is the traffic objective's acceptance bar (DESIGN.md
// §15): on the mobility-driven workload, traffic-aware assignment must
// remove at least 25% of the measured cross-server traffic while holding
// time-averaged pQoS within 0.01 of the delay-only baseline.
func TestTrafficSmoke(t *testing.T) {
	s := smokeSetup()
	s.Reps = 2
	res, err := Traffic(s, TrafficOptions{HorizonSec: 450})
	if err != nil {
		t.Fatal(err)
	}
	if red := res.Reduction(); red < 0.25 {
		t.Fatalf("traffic-aware removed only %.1f%% of cross-server traffic, want >= 25%%\n%s",
			100*red, res)
	}
	if d := res.PQoSDelta(); d < -0.01 {
		t.Fatalf("traffic-aware pQoS trails delay-only by %.4f, want within 0.01\n%s", -d, res)
	}
	if res.DelayOnly.BroadcastMbps.Mean() <= 0 {
		t.Fatal("delay-only arm measured no broadcast traffic: the crossing feedback path is dead")
	}
	// The delay-only arm's cut is still observable (TrafficCut reports the
	// canonical cut with the term off), and most of a 20-server fleet's
	// random hosting is cross-server.
	if f := res.DelayOnly.CrossHandoffFrac.Mean(); f < 0.5 {
		t.Fatalf("delay-only cross-handoff fraction %.2f, want > 0.5", f)
	}
	out := res.String()
	if !strings.Contains(out, "delay-only") || !strings.Contains(out, "traffic-aware") {
		t.Fatalf("rendering broken:\n%s", out)
	}
}

// TestTrafficJSONShape checks the BENCH_traffic.json document.
func TestTrafficJSONShape(t *testing.T) {
	s := smokeSetup()
	s.Reps = 1
	var buf bytes.Buffer
	res, err := Traffic(s, TrafficOptions{
		HorizonSec: 120,
		Scenario:   "8s-16z-200c-200cp",
		JSONOut:    &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Description  string             `json:"description"`
		HorizonSec   float64            `json:"horizon_sec"`
		Weight       float64            `json:"traffic_weight"`
		Reduction    float64            `json:"cross_traffic_reduction"`
		PQoSDelta    float64            `json:"pqos_delta"`
		DelayOnly    map[string]float64 `json:"delay_only"`
		TrafficAware map[string]float64 `json:"traffic_aware"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("BENCH_traffic.json does not parse: %v", err)
	}
	if doc.HorizonSec != 120 || doc.Weight != 2 {
		t.Fatalf("doc header %v/%v", doc.HorizonSec, doc.Weight)
	}
	if doc.Reduction != res.Reduction() || doc.PQoSDelta != res.PQoSDelta() {
		t.Fatal("doc summary diverges from the result")
	}
	for _, m := range []map[string]float64{doc.DelayOnly, doc.TrafficAware} {
		for _, k := range []string{"cross_server_traffic_mbps", "broadcast_mbps", "cross_handoff_frac", "time_avg_pqos", "zone_handoffs_per_run"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("doc missing %q", k)
			}
		}
	}
}

// TestTrafficTraceDeterministicAcrossWorkers replays one arm's full
// mobility trace at workers 1 and 4 and compares the per-tick digest —
// zone populations, interaction edge weights and zone hosting folded over
// every tick — plus the final measurements. Bit-identical or bust: the
// evaluator's sharded scans must not change a single decision.
func TestTrafficTraceDeterministicAcrossWorkers(t *testing.T) {
	setup := smokeSetup().withDefaults()
	opt := TrafficOptions{HorizonSec: 180, Scenario: "8s-16z-200c-200cp"}.withDefaults()
	cfg, err := dve.ParseScenario(dve.DefaultConfig(), opt.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0, opt.Weight} {
		var got [2]trafficArm
		for i, workers := range []int{1, 4} {
			o := opt
			o.Workers = workers
			arm, err := runTrafficArm(setup, o, cfg, lambda, 11, 22, 33)
			if err != nil {
				t.Fatal(err)
			}
			got[i] = arm
		}
		if got[0] != got[1] {
			t.Fatalf("λ=%g trace diverges across workers:\n  w1: %+v\n  w4: %+v", lambda, got[0], got[1])
		}
		if got[0].digest == fnvOffset {
			t.Fatalf("λ=%g digest never folded a tick", lambda)
		}
	}
}
