package core

// Pluggable client↔server delay storage (DESIGN.md §13). The dense k×m CS
// matrix is the memory wall between 100k clients and the million-user
// target: at 1M clients × 100 servers it costs ~800 MB, and every
// server-dimension mutation walks all of it. A DelayProvider replaces the
// mandatory dense rows with an interface the whole engine reads through —
// Problem.Delays non-nil routes every CS access to the provider, nil keeps
// the raw matrix path byte-for-byte as it has always been (and that raw
// path stays the oracle every provider is proven against; see
// provider_oracle_test.go and FuzzDelayProvider).
//
// Contract, shared by all implementations:
//
//   - Indices are the engine's dense indices: clients and servers are
//     swap-removed and renumbered exactly like Evaluator.RemoveClient /
//     RemoveServer, and the provider mirrors those renumberings through
//     SwapRemoveClient / SwapRemoveServer.
//   - Reads (ClientServer, Row) are safe to run concurrently with each
//     other as long as each call uses its own dst buffer; mutations demand
//     exclusive access, like every Evaluator mutation.
//   - Writes copy their inputs; callers keep ownership of the slices they
//     pass in.
//   - NaN delay entries handed to a mutation mean "unmeasured": the
//     provider resolves them to its own default — the dense provider stores
//     UnmeasuredDelayMs, the coordinate provider falls back to its
//     prediction, the shared-row provider stores UnmeasuredDelayMs.
//     Non-NaN entries are stored verbatim, which is what makes a provider
//     with full measured coverage bit-identical to the dense matrix.
type DelayProvider interface {
	// NumClients returns the current client count.
	NumClients() int
	// NumServers returns the current server count.
	NumServers() int
	// ClientServer returns the delay between client j and server i in
	// milliseconds — the provider-backed CS[j][i].
	ClientServer(j, i int) float64
	// Row materializes client j's full delay row into dst (len NumServers)
	// and returns it. Implementations backed by real rows may return an
	// internal slice instead of filling dst; treat the result as read-only
	// and valid only until the next mutation.
	Row(j int, dst []float64) []float64
	// SetClientDelays replaces client j's entire delay row — the
	// DelayUpdate measurement-refresh hook.
	SetClientDelays(j int, row []float64)
	// SetClientServerDelay overlays one measured delay for client j and
	// server i.
	SetClientServerDelay(j, i int, d float64)
	// AppendClient adds a new client with the given delay row (len
	// NumServers) at index NumClients.
	AppendClient(row []float64)
	// SwapRemoveClient removes client j, renumbering the last client to j.
	SwapRemoveClient(j int)
	// AppendServer adds a new server column at index NumServers. col is
	// either nil — every client unmeasured — or one entry per client,
	// NaN meaning unmeasured.
	AppendServer(col []float64)
	// SwapRemoveServer removes server column i, renumbering the last
	// server's column to i.
	SwapRemoveServer(i int)
	// Clone returns a deep copy sharing no mutable state.
	Clone() DelayProvider
	// MemoryBytes estimates the provider's resident size — the number the
	// memory-budget regression test asserts on.
	MemoryBytes() int
	// State returns a serializable snapshot of the provider's full
	// internal state; NewProviderFromState(State()) reconstructs a
	// provider whose every future read and mutation is bit-identical, the
	// property durable-session recovery leans on.
	State() *ProviderState
}

// UnmeasuredDelayMs is the sentinel stored for unmeasured client↔server
// pairs: far beyond any plausible bound, so placement avoids unmeasured
// servers until a real measurement streams in. The public layer's
// UnmeasuredRTTMs re-exports it.
const UnmeasuredDelayMs = 1e6

// resolveUnmeasured returns d with NaN mapped to UnmeasuredDelayMs.
func resolveUnmeasured(d float64) float64 {
	if d != d { // NaN
		return UnmeasuredDelayMs
	}
	return d
}

// DenseProvider stores one real row per client — today's CS matrix behind
// the provider interface, bit-for-bit. It buys no memory; it exists as the
// bridge implementation the oracle equivalence suite drives against the
// raw-matrix path, and as the provider you fall back to when neither
// coordinates nor shared rows fit the deployment.
type DenseProvider struct {
	rows    [][]float64
	servers int
}

// NewDenseProvider returns a dense provider over a deep copy of rows, each
// of which must have `servers` entries (NaN entries resolve to
// UnmeasuredDelayMs).
func NewDenseProvider(rows [][]float64, servers int) *DenseProvider {
	dp := &DenseProvider{rows: make([][]float64, 0, len(rows)), servers: servers}
	for _, r := range rows {
		dp.AppendClient(r)
	}
	return dp
}

// NumClients implements DelayProvider.
func (dp *DenseProvider) NumClients() int { return len(dp.rows) }

// NumServers implements DelayProvider.
func (dp *DenseProvider) NumServers() int { return dp.servers }

// ClientServer implements DelayProvider.
func (dp *DenseProvider) ClientServer(j, i int) float64 { return dp.rows[j][i] }

// Row implements DelayProvider: the internal row is returned without
// copying, like the raw matrix path.
func (dp *DenseProvider) Row(j int, _ []float64) []float64 { return dp.rows[j] }

// SetClientDelays implements DelayProvider.
func (dp *DenseProvider) SetClientDelays(j int, row []float64) {
	for i, d := range row {
		dp.rows[j][i] = resolveUnmeasured(d)
	}
}

// SetClientServerDelay implements DelayProvider.
func (dp *DenseProvider) SetClientServerDelay(j, i int, d float64) {
	dp.rows[j][i] = resolveUnmeasured(d)
}

// AppendClient implements DelayProvider, reusing a spare row left behind by
// SwapRemoveClient when one has capacity (mirroring Evaluator.AddClient's
// dense row-reuse).
func (dp *DenseProvider) AppendClient(row []float64) {
	j := len(dp.rows)
	if cap(dp.rows) > j && cap(dp.rows[:j+1][j]) >= dp.servers {
		dp.rows = dp.rows[:j+1]
		dp.rows[j] = dp.rows[j][:dp.servers]
	} else {
		dp.rows = append(dp.rows[:j], make([]float64, dp.servers))
	}
	dp.SetClientDelays(j, row)
}

// SwapRemoveClient implements DelayProvider. Rows are swapped rather than
// overwritten so the vacated row's capacity is retained for the next
// AppendClient.
func (dp *DenseProvider) SwapRemoveClient(j int) {
	l := len(dp.rows) - 1
	dp.rows[j], dp.rows[l] = dp.rows[l], dp.rows[j]
	dp.rows = dp.rows[:l]
}

// AppendServer implements DelayProvider.
func (dp *DenseProvider) AppendServer(col []float64) {
	for j := range dp.rows {
		d := UnmeasuredDelayMs
		if col != nil {
			d = resolveUnmeasured(col[j])
		}
		dp.rows[j] = append(dp.rows[j], d)
	}
	dp.servers++
}

// SwapRemoveServer implements DelayProvider.
func (dp *DenseProvider) SwapRemoveServer(i int) {
	l := dp.servers - 1
	for j := range dp.rows {
		dp.rows[j][i] = dp.rows[j][l]
		dp.rows[j] = dp.rows[j][:l]
	}
	dp.servers = l
}

// Clone implements DelayProvider.
func (dp *DenseProvider) Clone() DelayProvider {
	q := &DenseProvider{rows: make([][]float64, len(dp.rows)), servers: dp.servers}
	for j, r := range dp.rows {
		q.rows[j] = append([]float64(nil), r...)
	}
	return q
}

// MemoryBytes implements DelayProvider.
func (dp *DenseProvider) MemoryBytes() int {
	return len(dp.rows)*(8*dp.servers+24) + 24*cap(dp.rows)
}

// State implements DelayProvider.
func (dp *DenseProvider) State() *ProviderState {
	st := &DenseState{Servers: dp.servers, Rows: make([][]float64, len(dp.rows))}
	for j, r := range dp.rows {
		st.Rows[j] = append([]float64(nil), r...)
	}
	return &ProviderState{Kind: ProviderDense, Dense: st}
}
