package lp

import (
	"math"
	"testing"
)

// TestBealeCyclingExample runs the classic Beale LP that makes naive
// Dantzig-rule simplex cycle forever; the Bland's-rule fallback must
// terminate at the optimum.
//
//	min -0.75x1 + 150x2 - 0.02x3 + 6x4
//	s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 ≤ 0
//	     0.50x1 - 90x2 - 0.02x3 + 3x4 ≤ 0
//	     x3 ≤ 1
//
// Optimum: x = (0.04, 0, 1, 0) with objective -0.05.
func TestBealeCyclingExample(t *testing.T) {
	p := &Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		Rel: []Relation{LE, LE, LE},
		B:   []float64{0, 0, 1},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("objective %v, want -0.05", res.Objective)
	}
	want := []float64{0.04, 0, 1, 0}
	for j, v := range want {
		if math.Abs(res.X[j]-v) > 1e-9 {
			t.Fatalf("x = %v, want %v", res.X, want)
		}
	}
}

// TestKleeMintyCube solves the 3-D Klee–Minty cube, the worst case for
// Dantzig pricing; correctness matters here, not pivot count.
//
//	max 4x1 + 2x2 + x3  (as min of the negation)
//	s.t. x1 ≤ 5; 4x1 + x2 ≤ 25; 8x1 + 4x2 + x3 ≤ 125
//
// Optimum: x = (0, 0, 125), objective 125.
func TestKleeMintyCube(t *testing.T) {
	p := &Problem{
		C: []float64{-4, -2, -1},
		A: [][]float64{
			{1, 0, 0},
			{4, 1, 0},
			{8, 4, 1},
		},
		Rel: []Relation{LE, LE, LE},
		B:   []float64{5, 25, 125},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-(-125)) > 1e-7 {
		t.Fatalf("status %v objective %v, want optimal -125", res.Status, res.Objective)
	}
}

// TestLargeGAPRelaxation exercises the solver at the scale the MILP uses
// it: the LP relaxation of a 20-server × 80-zone assignment program.
func TestLargeGAPRelaxation(t *testing.T) {
	m, n := 20, 80
	nv := m * n
	p := &Problem{C: make([]float64, nv)}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			// Deterministic pseudo-costs.
			p.C[j*m+i] = float64((j*31+i*17)%13) / 3.0
		}
	}
	for j := 0; j < n; j++ {
		row := make([]float64, nv)
		for i := 0; i < m; i++ {
			row[j*m+i] = 1
		}
		p.A = append(p.A, row)
		p.Rel = append(p.Rel, EQ)
		p.B = append(p.B, 1)
	}
	for i := 0; i < m; i++ {
		row := make([]float64, nv)
		for j := 0; j < n; j++ {
			row[j*m+i] = 1 + float64(j%5)
		}
		p.A = append(p.A, row)
		p.Rel = append(p.Rel, LE)
		p.B = append(p.B, 30)
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	// All assignment equalities must hold.
	for j := 0; j < n; j++ {
		var sum float64
		for i := 0; i < m; i++ {
			sum += res.X[j*m+i]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("zone %d assignment sums to %v", j, sum)
		}
	}
}

// TestIterationCounterAdvances sanity-checks the pivot accounting.
func TestIterationCounterAdvances(t *testing.T) {
	p := &Problem{
		C:   []float64{-3, -5},
		A:   [][]float64{{1, 0}, {0, 2}, {3, 2}},
		Rel: []Relation{LE, LE, LE},
		B:   []float64{4, 12, 18},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations <= 0 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}
