package topology_test

import (
	"fmt"

	"dvecap/internal/topology"
	"dvecap/internal/xrand"
)

// ExampleHier generates the paper's 500-node topology and scales its
// delays so the worst round trip is 500 ms.
func ExampleHier() {
	g, err := topology.Hier(xrand.New(1), topology.DefaultHier())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d nodes, %d ASes, max RTT %.0f ms\n", g.N(), g.ASCount(), dm.MaxObservedRTT())
	// Output: 500 nodes, 20 ASes, max RTT 500 ms
}

// ExampleUSBackbone shows the embedded real topology.
func ExampleUSBackbone() {
	g := topology.USBackbone()
	fmt.Printf("%d PoPs, connected: %v\n", g.N(), g.Connected())
	// Output: 25 PoPs, connected: true
}
