package dvecap

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// smallCluster builds the two-server / two-zone / four-client instance the
// godoc example uses, via the map-RTT path.
func smallCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(100)
	if err := c.AddServer("fra", ServerSpec{CapacityMbps: 100, RTTs: map[string]float64{"nyc": 80}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddServer("nyc", ServerSpec{CapacityMbps: 100}); err != nil {
		t.Fatal(err)
	}
	for _, z := range []string{"plaza", "forest"} {
		if err := c.AddZone(z); err != nil {
			t.Fatal(err)
		}
	}
	for _, cl := range []struct {
		id, zone string
		fra, nyc float64
	}{
		{"alice", "plaza", 20, 95},
		{"bruno", "plaza", 30, 90},
		{"chloe", "forest", 95, 15},
		{"diego", "forest", 90, 25},
	} {
		err := c.AddClient(cl.id, ClientSpec{
			Zone:          cl.zone,
			BandwidthMbps: 2,
			RTTs:          map[string]float64{"fra": cl.fra, "nyc": cl.nyc},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClusterBuilderValidation(t *testing.T) {
	c := NewCluster(100)
	if err := c.AddServer("", ServerSpec{CapacityMbps: 1}); err == nil {
		t.Fatal("empty server ID accepted")
	}
	if err := c.AddServer("fra", ServerSpec{CapacityMbps: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := c.AddServer("fra", ServerSpec{CapacityMbps: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddServer("fra", ServerSpec{CapacityMbps: 100}); err == nil {
		t.Fatal("duplicate server accepted")
	}
	if err := c.AddZone(""); err == nil {
		t.Fatal("empty zone ID accepted")
	}
	if err := c.AddZone("plaza"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddZone("plaza"); err == nil {
		t.Fatal("duplicate zone accepted")
	}

	row := []float64{10}
	ok := ClientSpec{Zone: "plaza", BandwidthMbps: 1, RTTRow: row}
	if err := c.AddClient("", ok); err == nil {
		t.Fatal("empty client ID accepted")
	}
	bad := ok
	bad.Zone = "atlantis"
	if err := c.AddClient("a", bad); !errors.Is(err, ErrUnknownZone) {
		t.Fatalf("unknown zone: err = %v, want ErrUnknownZone", err)
	}
	bad = ok
	bad.BandwidthMbps = 0
	if err := c.AddClient("a", bad); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = ok
	bad.RTTs = map[string]float64{"fra": 10}
	if err := c.AddClient("a", bad); err == nil {
		t.Fatal("both RTTs and RTTRow accepted")
	}
	bad.RTTRow = nil
	bad.RTTs = nil
	if err := c.AddClient("a", bad); err == nil {
		t.Fatal("neither RTTs nor RTTRow accepted")
	}
	if err := c.AddClient("a", ok); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClient("a", ok); !errors.Is(err, ErrDuplicateClient) {
		t.Fatalf("duplicate client: err = %v, want ErrDuplicateClient", err)
	}
}

func TestClusterRTTCoverage(t *testing.T) {
	// A missing server pair surfaces at solve time, naming the pair.
	c := NewCluster(100)
	for _, s := range []string{"fra", "nyc", "sgp"} {
		if err := c.AddServer(s, ServerSpec{CapacityMbps: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddZone("plaza"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve("GreZ-GreC"); err == nil || !strings.Contains(err.Error(), "missing RTT") {
		t.Fatalf("missing server pair: err = %v", err)
	}
	// Conflicting per-pair measurements are rejected.
	c2 := NewCluster(100)
	if err := c2.AddServer("fra", ServerSpec{CapacityMbps: 100, RTTs: map[string]float64{"nyc": 80}}); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddServer("nyc", ServerSpec{CapacityMbps: 100, RTTs: map[string]float64{"fra": 90}}); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddZone("plaza"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Solve("GreZ-GreC"); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting pair: err = %v", err)
	}
	// A nonzero self-RTT is rejected; SetServerRTTs shape is checked.
	c3 := NewCluster(100)
	if err := c3.AddServer("fra", ServerSpec{CapacityMbps: 100, RTTs: map[string]float64{"fra": 5}}); err != nil {
		t.Fatal(err)
	}
	if err := c3.AddZone("plaza"); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Solve("GreZ-GreC"); err == nil || !strings.Contains(err.Error(), "self-RTT") {
		t.Fatalf("self-RTT: err = %v", err)
	}
	if err := c3.SetServerRTTs([][]float64{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("mis-shaped matrix accepted")
	}
	// A client RTT map must cover every server and reference only servers.
	c4 := smallCluster(t)
	if err := c4.AddClient("eve", ClientSpec{
		Zone: "plaza", BandwidthMbps: 1,
		RTTs: map[string]float64{"fra": 10},
	}); err != nil {
		t.Fatal(err) // coverage is checked at solve time
	}
	if _, err := c4.Solve("GreZ-GreC"); err == nil || !strings.Contains(err.Error(), "missing RTT") {
		t.Fatalf("uncovered client row: err = %v", err)
	}
	c5 := smallCluster(t)
	if err := c5.AddClient("eve", ClientSpec{
		Zone: "plaza", BandwidthMbps: 1,
		RTTs: map[string]float64{"fra": 10, "lon": 20},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c5.Solve("GreZ-GreC"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("unknown server in client row: err = %v, want ErrUnknownServer", err)
	}
	c6 := smallCluster(t)
	if err := c6.AddClient("eve", ClientSpec{
		Zone: "plaza", BandwidthMbps: 1, RTTRow: []float64{1, 2, 3},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c6.Solve("GreZ-GreC"); err == nil || !strings.Contains(err.Error(), "entries") {
		t.Fatalf("mis-sized RTT row: err = %v", err)
	}
}

func TestClusterSolveOptions(t *testing.T) {
	c := smallCluster(t)
	if _, err := c.Solve("NoSuchAlgo"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	base, err := c.Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Clients != 4 || len(base.ClientIDs) != 4 || base.ClientIDs[0] != "alice" {
		t.Fatalf("result shape: %+v", base)
	}
	// Same seed reproduces; options compose without changing this instance's
	// (already optimal) outcome.
	again, err := c.Solve("GreZ-GreC", WithSeed(1), WithWorkers(4), WithLocalSearchRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	if again.PQoS != base.PQoS || again.WithQoS != base.WithQoS {
		t.Fatalf("seeded re-solve diverged: %v vs %v", again.PQoS, base.PQoS)
	}
	// Estimation noise still solves (evaluated against supplied delays).
	noisy, err := c.Solve("GreZ-GreC", WithSeed(1), WithEstimationError(2))
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Clients != 4 {
		t.Fatalf("noisy solve shape: %+v", noisy)
	}
	if _, err := c.Solve("GreZ-GreC", WithEstimationError(0.5)); err == nil {
		t.Fatal("estimation factor < 1 accepted")
	}
	// ErrorOnOverflow surfaces infeasibility instead of spilling.
	tiny := NewCluster(100)
	if err := tiny.AddServer("fra", ServerSpec{CapacityMbps: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tiny.AddZone("plaza"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := tiny.AddClient(id, ClientSpec{Zone: "plaza", BandwidthMbps: 5, RTTRow: []float64{10}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tiny.Solve("GreZ-GreC", WithOverflow(ErrorOnOverflow)); err == nil {
		t.Fatal("overcommitted cluster solved under ErrorOnOverflow")
	}
	if _, err := tiny.Solve("GreZ-GreC"); err != nil {
		t.Fatalf("spill policy should complete: %v", err)
	}
}

func TestClusterSessionErrorsByID(t *testing.T) {
	c := smallCluster(t)
	sess, err := c.Open("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	spec := ClientSpec{Zone: "plaza", BandwidthMbps: 1, RTTRow: []float64{10, 20}}
	if err := sess.Join("alice", spec); !errors.Is(err, ErrDuplicateClient) {
		t.Fatalf("duplicate join: err = %v, want ErrDuplicateClient", err)
	}
	if err := sess.Leave("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown leave: err = %v, want ErrUnknownClient", err)
	}
	if err := sess.Move("ghost", "plaza"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown move: err = %v, want ErrUnknownClient", err)
	}
	if err := sess.Move("alice", "atlantis"); !errors.Is(err, ErrUnknownZone) {
		t.Fatalf("move to unknown zone: err = %v, want ErrUnknownZone", err)
	}
	if err := sess.UpdateDelays("alice", map[string]float64{"lon": 10}); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("refresh to unknown server: err = %v, want ErrUnknownServer", err)
	}
	if err := sess.UpdateDelays("ghost", map[string]float64{"fra": 10}); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("refresh of unknown client: err = %v, want ErrUnknownClient", err)
	}
	if _, err := sess.Client("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("lookup of unknown client: err = %v, want ErrUnknownClient", err)
	}
	if _, err := sess.ZoneHost("atlantis"); !errors.Is(err, ErrUnknownZone) {
		t.Fatalf("host of unknown zone: err = %v, want ErrUnknownZone", err)
	}
	// The session snapshots the builder: mutating it afterwards changes
	// nothing for the open session.
	if err := c.AddZone("harbor"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ZoneHost("harbor"); !errors.Is(err, ErrUnknownZone) {
		t.Fatal("session saw a zone added to the builder after Open")
	}
}

func TestWithCorrelationOption(t *testing.T) {
	// The option wins over the deprecated field and takes the paper default
	// range check.
	scn, err := NewScenario(ScenarioParams{Seed: 3, Correlation: 0.2}, WithCorrelation(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if got := scn.Config().Correlation; got != 0.8 {
		t.Fatalf("correlation = %v, want option value 0.8", got)
	}
	if _, err := NewScenario(ScenarioParams{Seed: 3}, WithCorrelation(1.5)); err == nil {
		t.Fatal("correlation > 1 accepted")
	}
	if _, err := NewScenario(ScenarioParams{Seed: 3}, WithCorrelation(-0.1)); err == nil {
		t.Fatal("negative option correlation accepted (the sentinel is field-only)")
	}
	// Legacy field semantics are preserved: zero means δ = 0, negative
	// restores the paper default.
	legacy, err := NewScenario(ScenarioParams{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := legacy.Config().Correlation; got != 0 {
		t.Fatalf("zero-value field correlation = %v, want legacy 0", got)
	}
}

func TestWithSeedOverridesParamsSeed(t *testing.T) {
	a, err := NewScenario(ScenarioParams{Seed: 1, Servers: 5, Zones: 10, Clients: 100, Correlation: 0.5}, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScenario(ScenarioParams{Seed: 9, Servers: 5, Zones: 10, Clients: 100, Correlation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Assign("GreZ-GreC")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Assign("GreZ-GreC")
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "WithSeed(9) vs Seed:9", ra, rb)
}

func TestClusterRejectsInvalidMeasurements(t *testing.T) {
	nan := math.NaN()
	c := smallCluster(t)
	if err := c.AddServer("bad", ServerSpec{CapacityMbps: nan}); err == nil {
		t.Fatal("NaN capacity accepted")
	}
	if err := c.AddClient("eve", ClientSpec{Zone: "plaza", BandwidthMbps: nan, RTTRow: []float64{1, 2}}); err == nil {
		t.Fatal("NaN bandwidth accepted")
	}
	if err := c.AddClient("eve", ClientSpec{Zone: "plaza", BandwidthMbps: 1, RTTRow: []float64{-1, 2}}); err != nil {
		t.Fatal(err) // row content is checked at solve/open time
	}
	if _, err := c.Solve("GreZ-GreC"); err == nil || !strings.Contains(err.Error(), ">= 0") {
		t.Fatalf("negative RTT row solved: err = %v", err)
	}

	sess, err := smallCluster(t).Open("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// The live session has no later Validate pass, so every mouth must
	// reject out-of-model measurements up front.
	if err := sess.Join("eve", ClientSpec{Zone: "plaza", BandwidthMbps: 1, RTTRow: []float64{nan, 2}}); err == nil {
		t.Fatal("session join with NaN RTT accepted")
	}
	if err := sess.Join("eve", ClientSpec{Zone: "plaza", BandwidthMbps: 1, RTTs: map[string]float64{"fra": -5, "nyc": 2}}); err == nil {
		t.Fatal("session join with negative RTT accepted")
	}
	if err := sess.UpdateDelays("alice", map[string]float64{"fra": nan}); err == nil {
		t.Fatal("NaN delay refresh accepted")
	}
	if err := sess.UpdateDelays("alice", map[string]float64{"fra": -3}); err == nil {
		t.Fatal("negative delay refresh accepted")
	}
	if err := sess.UpdateDelayRow("alice", []float64{-3, 10}); err == nil {
		t.Fatal("negative delay row accepted")
	}
	if err := sess.SetBandwidth("alice", nan); err == nil {
		t.Fatal("NaN bandwidth update accepted")
	}
	// An empty refresh is a no-op for a live client but must still report
	// unknown IDs — callers batching re-probe results rely on the signal.
	if err := sess.UpdateDelays("alice", nil); err != nil {
		t.Fatalf("empty refresh of live client: %v", err)
	}
	if err := sess.UpdateDelays("ghost", nil); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("empty refresh of unknown client: err = %v, want ErrUnknownClient", err)
	}
}
