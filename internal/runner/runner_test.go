package runner

import (
	"errors"
	"sync/atomic"
	"testing"

	"dvecap/internal/xrand"
)

func TestRunReturnsResultsInOrder(t *testing.T) {
	got, err := Run(1, 20, func(rep int, rng *xrand.RNG) (int, error) {
		return rep * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestRunDeterministicPerReplication(t *testing.T) {
	f := func() []float64 {
		out, err := Run(42, 16, func(rep int, rng *xrand.RNG) (float64, error) {
			// Draw a variable number of values to stress scheduling
			// independence.
			n := rep%3 + 1
			var last float64
			for i := 0; i < n; i++ {
				last = rng.Float64()
			}
			return last, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := f(), f()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replication %d not deterministic", i)
		}
	}
}

func TestRunSeedsAreIndependentStreams(t *testing.T) {
	out, err := Run(7, 8, func(rep int, rng *xrand.RNG) (float64, error) {
		return rng.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("two replications drew identical first values: %v", v)
		}
		seen[v] = true
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(1, 10, func(rep int, rng *xrand.RNG) (int, error) {
		if rep == 7 {
			return 0, boom
		}
		return rep, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunRejectsZeroReps(t *testing.T) {
	if _, err := Run(1, 0, func(int, *xrand.RNG) (int, error) { return 0, nil }); err == nil {
		t.Fatal("0 reps accepted")
	}
}

func TestRunExecutesAllReps(t *testing.T) {
	var count atomic.Int64
	_, err := Run(3, 100, func(rep int, rng *xrand.RNG) (struct{}, error) {
		count.Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("executed %d reps", count.Load())
	}
}

func TestCollectFoldsInOrder(t *testing.T) {
	got := Collect([]int{1, 2, 3}, "", func(acc string, v int) string {
		return acc + string(rune('0'+v))
	})
	if got != "123" {
		t.Fatalf("Collect = %q", got)
	}
}
