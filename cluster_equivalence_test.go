package dvecap

// Equivalence oracles for the Cluster-engine refactor: the pre-refactor
// Assign / AssignWithEstimationError / Session implementations are
// retained here verbatim (over the same internals they always used) and
// the adapter paths must reproduce them bit for bit — the same pattern as
// core's clone-and-rescore local-search oracle.

import (
	"fmt"
	"math"
	"testing"

	"dvecap/internal/core"
	"dvecap/internal/estimator"
	"dvecap/internal/repair"
	"dvecap/internal/xrand"
)

// legacyAssign is the pre-refactor Scenario.Assign.
func legacyAssign(s *Scenario, algorithm string) (*Result, error) {
	tp, ok := core.ByName(algorithm)
	if !ok {
		return nil, fmt.Errorf("dvecap: unknown algorithm %q (have %v)", algorithm, Algorithms())
	}
	truth := s.world.Problem()
	a, err := tp.Solve(s.rng.Split(), truth, core.Options{Overflow: core.SpillLargestResidual})
	if err != nil {
		return nil, err
	}
	m := core.Evaluate(truth, a)
	return &Result{
		Algorithm:     algorithm,
		PQoS:          m.PQoS,
		Utilization:   m.Utilization,
		WithQoS:       m.WithQoS,
		Clients:       truth.NumClients(),
		Delays:        m.Delays,
		ZoneServer:    a.ZoneServer,
		ClientContact: a.ClientContact,
	}, nil
}

// legacyAssignNoisy is the pre-refactor Scenario.AssignWithEstimationError.
func legacyAssignNoisy(s *Scenario, algorithm string, e float64) (*Result, error) {
	tp, ok := core.ByName(algorithm)
	if !ok {
		return nil, fmt.Errorf("dvecap: unknown algorithm %q (have %v)", algorithm, Algorithms())
	}
	truth := s.world.Problem()
	noisy, err := estimator.WithFactor(e).PerturbProblem(s.rng.Split(), truth)
	if err != nil {
		return nil, err
	}
	a, err := tp.Solve(s.rng.Split(), noisy, core.Options{Overflow: core.SpillLargestResidual})
	if err != nil {
		return nil, err
	}
	m := core.Evaluate(truth, a)
	return &Result{
		Algorithm:     algorithm,
		PQoS:          m.PQoS,
		Utilization:   m.Utilization,
		WithQoS:       m.WithQoS,
		Clients:       truth.NumClients(),
		Delays:        m.Delays,
		ZoneServer:    a.ZoneServer,
		ClientContact: a.ClientContact,
	}, nil
}

// legacySession is the pre-refactor Session: a repair planner bound to the
// world through repair.WorldBinding.
type legacySession struct {
	scn     *Scenario
	binding *repair.WorldBinding
	algo    string
}

func legacyStartSession(s *Scenario, algorithm string, driftPQoS float64) (*legacySession, error) {
	tp, ok := core.ByName(algorithm)
	if !ok {
		return nil, fmt.Errorf("dvecap: unknown algorithm %q (have %v)", algorithm, Algorithms())
	}
	if driftPQoS <= 0 {
		driftPQoS = 0.02
	}
	pl, err := repair.New(repair.Config{
		Algo:      tp,
		Opt:       core.Options{Overflow: core.SpillLargestResidual},
		DriftPQoS: driftPQoS,
	}, s.world.Problem(), s.rng.Split())
	if err != nil {
		return nil, err
	}
	return &legacySession{scn: s, binding: repair.BindWorld(pl, s.world), algo: algorithm}, nil
}

func (sess *legacySession) Join(n int) error {
	return sess.binding.Join(sess.scn.world.Join(sess.scn.rng.Split(), n))
}

func (sess *legacySession) Leave(n int) error {
	removed, err := sess.scn.world.Leave(sess.scn.rng.Split(), n)
	if err != nil {
		return err
	}
	return sess.binding.Leave(removed)
}

func (sess *legacySession) Move(n int) error {
	moved, err := sess.scn.world.Move(sess.scn.rng.Split(), n)
	if err != nil {
		return err
	}
	return sess.binding.Move(moved)
}

func (sess *legacySession) Resolve() error { return sess.binding.Planner().FullSolve() }

func (sess *legacySession) Result() (*Result, error) {
	pl := sess.binding.Planner()
	truth := sess.scn.world.Problem()
	handles := sess.binding.Handles()
	a := &core.Assignment{
		ZoneServer:    pl.ZoneServers(),
		ClientContact: make([]int, len(handles)),
	}
	for j, h := range handles {
		c, err := pl.Contact(h)
		if err != nil {
			return nil, err
		}
		a.ClientContact[j] = c
	}
	m := core.Evaluate(truth, a)
	return &Result{
		Algorithm:     sess.algo,
		PQoS:          m.PQoS,
		Utilization:   m.Utilization,
		WithQoS:       m.WithQoS,
		Clients:       truth.NumClients(),
		Delays:        m.Delays,
		ZoneServer:    a.ZoneServer,
		ClientContact: a.ClientContact,
	}, nil
}

func (sess *legacySession) Stats() repair.Stats { return sess.binding.Planner().Stats() }

// requireSameResult asserts bit-identical results (no tolerances: the two
// paths must run the exact same float operations in the same order).
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Algorithm != want.Algorithm || got.Clients != want.Clients ||
		got.WithQoS != want.WithQoS || got.PQoS != want.PQoS ||
		got.Utilization != want.Utilization {
		t.Fatalf("%s: scalar mismatch:\ngot  %+v\nwant %+v", label,
			[]interface{}{got.Algorithm, got.Clients, got.WithQoS, got.PQoS, got.Utilization},
			[]interface{}{want.Algorithm, want.Clients, want.WithQoS, want.PQoS, want.Utilization})
	}
	if len(got.ZoneServer) != len(want.ZoneServer) {
		t.Fatalf("%s: %d zones vs %d", label, len(got.ZoneServer), len(want.ZoneServer))
	}
	for z := range got.ZoneServer {
		if got.ZoneServer[z] != want.ZoneServer[z] {
			t.Fatalf("%s: zone %d hosted on %d vs %d", label, z, got.ZoneServer[z], want.ZoneServer[z])
		}
	}
	if len(got.ClientContact) != len(want.ClientContact) || len(got.Delays) != len(want.Delays) {
		t.Fatalf("%s: client shape mismatch", label)
	}
	for j := range got.ClientContact {
		if got.ClientContact[j] != want.ClientContact[j] {
			t.Fatalf("%s: client %d contact %d vs %d", label, j, got.ClientContact[j], want.ClientContact[j])
		}
		if got.Delays[j] != want.Delays[j] && !(math.IsNaN(got.Delays[j]) && math.IsNaN(want.Delays[j])) {
			t.Fatalf("%s: client %d delay %v vs %v", label, j, got.Delays[j], want.Delays[j])
		}
	}
}

// TestAssignMatchesLegacyPath: the Cluster-engine adapter reproduces the
// pre-refactor Assign bit for bit, across algorithms and consecutive
// calls (which must consume the scenario's random stream identically).
func TestAssignMatchesLegacyPath(t *testing.T) {
	params := ScenarioParams{Seed: 17, Notation: "10s-30z-400c-200cp", Correlation: 0.5}
	for _, algo := range Algorithms() {
		scnNew, err := NewScenario(params)
		if err != nil {
			t.Fatal(err)
		}
		scnOld, err := NewScenario(params)
		if err != nil {
			t.Fatal(err)
		}
		for call := 0; call < 2; call++ {
			got, err := scnNew.Assign(algo)
			if err != nil {
				t.Fatalf("%s call %d: %v", algo, call, err)
			}
			want, err := legacyAssign(scnOld, algo)
			if err != nil {
				t.Fatalf("%s call %d (legacy): %v", algo, call, err)
			}
			requireSameResult(t, fmt.Sprintf("%s call %d", algo, call), got, want)
			if got.ClientIDs != nil {
				t.Fatalf("%s: scenario path unexpectedly populated ClientIDs", algo)
			}
		}
	}
}

// TestAssignWithEstimationErrorMatchesLegacyPath: same, for the noisy
// path (two rng splits per call, in perturb-then-solve order).
func TestAssignWithEstimationErrorMatchesLegacyPath(t *testing.T) {
	params := ScenarioParams{Seed: 23, Notation: "10s-30z-400c-200cp", Correlation: 0.5}
	scnNew, err := NewScenario(params)
	if err != nil {
		t.Fatal(err)
	}
	scnOld, err := NewScenario(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{1.2, 2.0} {
		got, err := scnNew.AssignWithEstimationError("GreZ-GreC", e)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacyAssignNoisy(scnOld, "GreZ-GreC", e)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("e=%v", e), got, want)
	}
	// Invalid factors must still fail (the estimator's validation).
	if _, err := scnNew.AssignWithEstimationError("GreZ-GreC", 0.5); err == nil {
		t.Fatal("factor < 1 accepted")
	}
	if _, err := scnNew.AssignWithEstimationError("GreZ-GreC", 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

// TestStartSessionMatchesLegacyPath: the ClusterSession-backed Session
// replays the pre-refactor planner event sequence move for move —
// results, populations and repair counters all bit-identical under
// sustained churn, drift-guard solves included.
func TestStartSessionMatchesLegacyPath(t *testing.T) {
	params := ScenarioParams{Seed: 31, Servers: 8, Zones: 30, Clients: 500, Correlation: 0.5}
	scnNew, err := NewScenario(params)
	if err != nil {
		t.Fatal(err)
	}
	scnOld, err := NewScenario(params)
	if err != nil {
		t.Fatal(err)
	}
	sessNew, err := scnNew.StartSession("GreZ-GreC", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sessOld, err := legacyStartSession(scnOld, "GreZ-GreC", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	step := func(round int, name string, newErr, oldErr error) {
		t.Helper()
		if (newErr == nil) != (oldErr == nil) {
			t.Fatalf("round %d %s: error divergence: new %v, old %v", round, name, newErr, oldErr)
		}
	}
	for round := 0; round < 6; round++ {
		step(round, "join", sessNew.Join(30), sessOld.Join(30))
		step(round, "move", sessNew.Move(25), sessOld.Move(25))
		step(round, "leave", sessNew.Leave(20), sessOld.Leave(20))
		if sessNew.NumClients() != sessOld.binding.Planner().NumClients() {
			t.Fatalf("round %d: population %d vs %d", round, sessNew.NumClients(), sessOld.binding.Planner().NumClients())
		}
		gotRes, err := sessNew.Result()
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := sessOld.Result()
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("round %d", round), gotRes, wantRes)
		gotSt, wantSt := sessNew.Stats(), sessionStatsFrom(sessOld.Stats())
		if gotSt != wantSt {
			t.Fatalf("round %d: stats diverged:\nnew %+v\nold %+v", round, gotSt, wantSt)
		}
	}
	// Explicit full re-solves must stay in lockstep too.
	step(99, "resolve", sessNew.Resolve(), sessOld.Resolve())
	gotRes, err := sessNew.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := sessOld.Result()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "after resolve", gotRes, wantRes)
}

// TestClusterChurnMatchesDirectPlanner is the acceptance check for the
// public surface: a churn run driven entirely through the Cluster API —
// join, leave, move, UpdateDelays, all by string ID — must match a
// repair.Planner driven directly with the same events.
func TestClusterChurnMatchesDirectPlanner(t *testing.T) {
	const (
		servers = 6
		zones   = 15
		seed    = 77
	)
	rng := xrand.New(5000)
	ssRow := func() [][]float64 {
		ss := make([][]float64, servers)
		for i := range ss {
			ss[i] = make([]float64, servers)
		}
		for i := 0; i < servers; i++ {
			for l := i + 1; l < servers; l++ {
				d := 10 + 150*rng.Float64()
				ss[i][l], ss[l][i] = d, d
			}
		}
		return ss
	}
	ss := ssRow()
	row := func() []float64 {
		r := make([]float64, servers)
		for i := range r {
			r[i] = 5 + 300*rng.Float64()
		}
		return r
	}

	// Build the cluster through the public API…
	c := NewCluster(250)
	for i := 0; i < servers; i++ {
		if err := c.AddServer(fmt.Sprintf("srv-%d", i), ServerSpec{CapacityMbps: 400}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetServerRTTs(ss); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < zones; z++ {
		if err := c.AddZone(fmt.Sprintf("zone-%d", z)); err != nil {
			t.Fatal(err)
		}
	}
	type seedClient struct {
		id   string
		zone int
		rt   float64
		row  []float64
	}
	var seedPop []seedClient
	for j := 0; j < 120; j++ {
		sc := seedClient{
			id:   fmt.Sprintf("cl-%d", j),
			zone: rng.IntN(zones),
			rt:   1 + rng.Float64(),
			row:  row(),
		}
		seedPop = append(seedPop, sc)
		if err := c.AddClient(sc.id, ClientSpec{
			Zone:          fmt.Sprintf("zone-%d", sc.zone),
			BandwidthMbps: sc.rt,
			RTTRow:        sc.row,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sess, err := c.Open("GreZ-GreC", WithSeed(seed), WithDriftGuard(0.02))
	if err != nil {
		t.Fatal(err)
	}

	// …and the identical problem for the directly driven planner.
	p := &core.Problem{
		ServerCaps: make([]float64, servers),
		NumZones:   zones,
		SS:         ss,
		D:          250,
	}
	for i := range p.ServerCaps {
		p.ServerCaps[i] = 400
	}
	for _, sc := range seedPop {
		p.ClientZones = append(p.ClientZones, sc.zone)
		p.ClientRT = append(p.ClientRT, sc.rt)
		p.CS = append(p.CS, append([]float64(nil), sc.row...))
	}
	tp, _ := core.ByName("GreZ-GreC")
	pl, err := repair.New(repair.Config{
		Algo:      tp,
		Opt:       core.Options{Overflow: core.SpillLargestResidual},
		DriftPQoS: 0.02,
	}, p, xrand.New(seed).Split())
	if err != nil {
		t.Fatal(err)
	}
	handleOf := map[string]int{}
	for j, sc := range seedPop {
		handleOf[sc.id] = j
	}

	live := append([]string(nil), c.ClientIDs()...)
	compare := func(stage string) {
		t.Helper()
		if got, want := sess.PQoS(), pl.PQoS(); got != want {
			t.Fatalf("%s: pQoS %v vs %v", stage, got, want)
		}
		if got, want := sess.NumClients(), pl.NumClients(); got != want {
			t.Fatalf("%s: population %d vs %d", stage, got, want)
		}
		for z := 0; z < zones; z++ {
			host, err := sess.ZoneHost(fmt.Sprintf("zone-%d", z))
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			if want := fmt.Sprintf("srv-%d", pl.ZoneHost(z)); host != want {
				t.Fatalf("%s: zone %d hosted on %s vs %s", stage, z, host, want)
			}
		}
		for _, id := range live {
			cl, err := sess.Client(id)
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			contact, err := pl.Contact(handleOf[id])
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			if want := fmt.Sprintf("srv-%d", contact); cl.Contact != want {
				t.Fatalf("%s: client %s contact %s vs %s", stage, id, cl.Contact, want)
			}
			delay, err := pl.ClientDelay(handleOf[id])
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			if cl.DelayMs != delay {
				t.Fatalf("%s: client %s delay %v vs %v", stage, id, cl.DelayMs, delay)
			}
		}
		gotSt, wantSt := sess.Stats(), sessionStatsFrom(pl.Stats())
		if gotSt != wantSt {
			t.Fatalf("%s: stats diverged:\nsession %+v\nplanner %+v", stage, gotSt, wantSt)
		}
	}
	compare("initial")

	next := len(seedPop)
	for round := 0; round < 5; round++ {
		// Joins.
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("cl-%d", next)
			next++
			zone := rng.IntN(zones)
			rt := 1 + rng.Float64()
			r := row()
			if err := sess.Join(id, ClientSpec{
				Zone:          fmt.Sprintf("zone-%d", zone),
				BandwidthMbps: rt,
				RTTRow:        r,
			}); err != nil {
				t.Fatal(err)
			}
			h, err := pl.Join(zone, rt, r)
			if err != nil {
				t.Fatal(err)
			}
			handleOf[id] = h
			live = append(live, id)
		}
		// Moves.
		for i := 0; i < 6; i++ {
			id := live[int(rng.IntN(len(live)))]
			zone := rng.IntN(zones)
			if err := sess.Move(id, fmt.Sprintf("zone-%d", zone)); err != nil {
				t.Fatal(err)
			}
			if err := pl.Move(handleOf[id], zone); err != nil {
				t.Fatal(err)
			}
		}
		// Measured-delay refreshes: full rows and partial overlays.
		for i := 0; i < 4; i++ {
			id := live[int(rng.IntN(len(live)))]
			if i%2 == 0 {
				r := row()
				if err := sess.UpdateDelayRow(id, r); err != nil {
					t.Fatal(err)
				}
				if err := pl.UpdateDelays(handleOf[id], r); err != nil {
					t.Fatal(err)
				}
			} else {
				srv := int(rng.IntN(servers))
				d := 5 + 300*rng.Float64()
				if err := sess.UpdateDelays(id, map[string]float64{fmt.Sprintf("srv-%d", srv): d}); err != nil {
					t.Fatal(err)
				}
				full := make([]float64, servers)
				idx, err := pl.Index(handleOf[id])
				if err != nil {
					t.Fatal(err)
				}
				copy(full, pl.Problem().CS[idx])
				full[srv] = d
				if err := pl.UpdateDelays(handleOf[id], full); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Leaves.
		for i := 0; i < 5; i++ {
			pick := int(rng.IntN(len(live)))
			id := live[pick]
			live = append(live[:pick], live[pick+1:]...)
			if err := sess.Leave(id); err != nil {
				t.Fatal(err)
			}
			if err := pl.Leave(handleOf[id]); err != nil {
				t.Fatal(err)
			}
			delete(handleOf, id)
		}
		compare(fmt.Sprintf("round %d", round))
	}

	// Forced full re-solve stays in lockstep.
	if err := sess.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := pl.FullSolve(); err != nil {
		t.Fatal(err)
	}
	compare("after resolve")
}
