package experiments

import (
	"fmt"
	"strings"
	"time"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/metrics"
	"dvecap/internal/milp"
	"dvecap/internal/xrand"
)

// RuntimeOptions tunes the §4.2 runtime comparison ("all of our proposed
// algorithms took less than 1 second"; lp_solve took 0.2 s / 41.5 s and did
// not finish on the large configurations).
type RuntimeOptions struct {
	// Scenarios defaults to Table1Scenarios.
	Scenarios []string
	// LPDeadline bounds each exact solve (default 60 s); the large
	// scenarios are reported as exceeding it, like the paper's ">10 hours".
	LPDeadline time.Duration
	// IncludeLP enables the exact-solver timings.
	IncludeLP bool
}

// RuntimeRow is one scenario's wall-clock timings.
type RuntimeRow struct {
	Scenario  string
	Heuristic map[string]time.Duration
	LP        time.Duration
	LPRan     bool
	LPOptimal bool
}

// RuntimeResult reproduces the execution-time remarks of §4.2.
type RuntimeResult struct {
	Rows  []RuntimeRow
	Names []string
}

// Runtime measures one solve per scenario per algorithm (timings, unlike
// quality, need no averaging to make the paper's point: the heuristics are
// orders of magnitude inside the interactivity budget).
func Runtime(setup Setup, opt RuntimeOptions) (*RuntimeResult, error) {
	setup = setup.withDefaults()
	if opt.Scenarios == nil {
		opt.Scenarios = Table1Scenarios
	}
	if opt.LPDeadline == 0 {
		opt.LPDeadline = 60 * time.Second
	}
	algos := core.PaperAlgorithms()
	names := algorithmNames(algos)
	res := &RuntimeResult{Names: names}
	rng := xrand.New(setup.Seed)
	for si, scenario := range opt.Scenarios {
		cfg, err := dve.ParseScenario(dve.DefaultConfig(), scenario)
		if err != nil {
			return nil, err
		}
		world, err := setup.buildWorld(rng.Split(), cfg)
		if err != nil {
			return nil, err
		}
		truth := world.Problem()
		sopt := scratchOpts()
		row := RuntimeRow{Scenario: scenario, Heuristic: map[string]time.Duration{}}
		for _, tp := range algos {
			start := time.Now()
			if _, err := tp.Solve(rng.Split(), truth, sopt); err != nil {
				return nil, fmt.Errorf("runtime %s/%s: %w", scenario, tp.Name, err)
			}
			row.Heuristic[tp.Name] = time.Since(start)
		}
		if opt.IncludeLP && si < LPScenarioLimit {
			start := time.Now()
			_, iap, rap, err := milp.SolveCAP(truth, milp.SolverOptions{Deadline: opt.LPDeadline})
			if err != nil {
				return nil, fmt.Errorf("runtime %s lp: %w", scenario, err)
			}
			row.LP = time.Since(start)
			row.LPRan = true
			row.LPOptimal = iap.Optimal && rap.Optimal
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the timing table.
func (r *RuntimeResult) String() string {
	header := append([]string{"DVE conf."}, r.Names...)
	header = append(header, "lp_solve-equivalent")
	tb := metrics.NewTable(header...)
	for _, row := range r.Rows {
		cells := []string{row.Scenario}
		for _, n := range r.Names {
			cells = append(cells, row.Heuristic[n].Round(10*time.Microsecond).String())
		}
		switch {
		case !row.LPRan:
			cells = append(cells, "- (impractical)")
		case !row.LPOptimal:
			cells = append(cells, fmt.Sprintf("%s (deadline hit)", row.LP.Round(time.Millisecond)))
		default:
			cells = append(cells, row.LP.Round(time.Millisecond).String())
		}
		tb.AddRow(cells...)
	}
	var b strings.Builder
	b.WriteString("Runtime: single-solve wall clock per scenario (§4.2)\n")
	b.WriteString(tb.String())
	return b.String()
}
