package topology

import (
	"fmt"

	"dvecap/internal/xrand"
)

// TransitStubParams configures a GT-ITM-style transit-stub topology, the
// other canonical Internet model of the paper's era (Zegura et al., used by
// many DVE studies alongside BRITE). A backbone of transit domains carries
// traffic between leaf stub domains:
//
//	transit domains — densely connected small Waxman meshes, linked to
//	                  each other through random domain-to-domain edges;
//	stub domains    — small Waxman meshes, each homed on one transit node.
//
// AS numbering: every domain (transit or stub) gets a distinct AS id, so
// the dve package's region machinery (correlation δ, hot regions) works
// unchanged on transit-stub worlds.
type TransitStubParams struct {
	TransitDomains    int     // number of backbone domains (>= 1)
	TransitNodes      int     // nodes per transit domain (>= 1)
	StubsPerTransit   int     // stub domains homed on each transit node (>= 0)
	StubNodes         int     // nodes per stub domain (>= 1)
	ExtraTransitLinks int     // extra random inter-transit-domain links beyond the connecting ring
	PlaneSize         float64 // global plane side (> 0)
	WaxmanAlpha       float64 // intra-domain Waxman alpha
	WaxmanBeta        float64 // intra-domain Waxman beta
}

// DefaultTransitStub returns a ~500-node configuration comparable to the
// paper's hierarchical setup: 4 transit domains × 5 nodes, each transit
// node homing 3 stubs of 8 nodes (4×5×(1+3×8) = 500 nodes).
func DefaultTransitStub() TransitStubParams {
	return TransitStubParams{
		TransitDomains:    4,
		TransitNodes:      5,
		StubsPerTransit:   3,
		StubNodes:         8,
		ExtraTransitLinks: 2,
		PlaneSize:         1000,
		WaxmanAlpha:       0.3,
		WaxmanBeta:        0.3,
	}
}

// TotalNodes returns the node count this configuration generates.
func (p TransitStubParams) TotalNodes() int {
	perTransitNode := 1 + p.StubsPerTransit*p.StubNodes
	return p.TransitDomains * p.TransitNodes * perTransitNode
}

func (p TransitStubParams) validate() error {
	switch {
	case p.TransitDomains < 1:
		return fmt.Errorf("topology: TransitStub TransitDomains = %d, want >= 1", p.TransitDomains)
	case p.TransitNodes < 1:
		return fmt.Errorf("topology: TransitStub TransitNodes = %d, want >= 1", p.TransitNodes)
	case p.StubsPerTransit < 0:
		return fmt.Errorf("topology: TransitStub StubsPerTransit = %d, want >= 0", p.StubsPerTransit)
	case p.StubsPerTransit > 0 && p.StubNodes < 1:
		return fmt.Errorf("topology: TransitStub StubNodes = %d, want >= 1", p.StubNodes)
	case p.ExtraTransitLinks < 0:
		return fmt.Errorf("topology: TransitStub ExtraTransitLinks = %d, want >= 0", p.ExtraTransitLinks)
	case p.PlaneSize <= 0:
		return fmt.Errorf("topology: TransitStub PlaneSize = %v, want > 0", p.PlaneSize)
	case p.WaxmanAlpha <= 0 || p.WaxmanAlpha > 1:
		return fmt.Errorf("topology: TransitStub WaxmanAlpha = %v, want (0,1]", p.WaxmanAlpha)
	case p.WaxmanBeta <= 0 || p.WaxmanBeta > 1:
		return fmt.Errorf("topology: TransitStub WaxmanBeta = %v, want (0,1]", p.WaxmanBeta)
	}
	return nil
}

// TransitStub generates the topology. Edge delays equal Euclidean link
// lengths, consistent with the other generators.
func TransitStub(rng *xrand.RNG, p TransitStubParams) (*Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	g := NewGraph(p.TotalNodes(), p.TotalNodes()*3)
	nextAS := 0

	// Transit domain centres spread over the plane.
	centres := make([]Point, p.TransitDomains)
	for d := range centres {
		centres[d] = Point{X: rng.Uniform(0, p.PlaneSize), Y: rng.Uniform(0, p.PlaneSize)}
	}
	region := p.PlaneSize * 0.18

	// Generate transit domains and remember their node IDs.
	transitNodes := make([][]int, p.TransitDomains)
	for d := 0; d < p.TransitDomains; d++ {
		sub, err := Waxman(rng.Split(), WaxmanParams{
			N: p.TransitNodes, Alpha: p.WaxmanAlpha, Beta: p.WaxmanBeta,
			PlaneSize: region, MinDegree: minInt(2, p.TransitNodes-1, 1),
		})
		if err != nil {
			return nil, err
		}
		as := nextAS
		nextAS++
		base := g.N()
		off := Point{X: centres[d].X - region/2, Y: centres[d].Y - region/2}
		for _, n := range sub.Nodes {
			id := g.AddNode(Point{X: off.X + n.Pos.X, Y: off.Y + n.Pos.Y}, as)
			transitNodes[d] = append(transitNodes[d], id)
		}
		for _, e := range sub.Edges {
			g.AddEdge(base+e.A, base+e.B, g.Nodes[base+e.A].Pos.Dist(g.Nodes[base+e.B].Pos))
		}
	}

	// Backbone: ring over domains plus extra random links, realised between
	// random nodes of the two domains.
	link := func(d1, d2 int) {
		a := transitNodes[d1][rng.IntN(len(transitNodes[d1]))]
		b := transitNodes[d2][rng.IntN(len(transitNodes[d2]))]
		if a != b && !g.HasEdge(a, b) {
			g.AddEdge(a, b, g.Nodes[a].Pos.Dist(g.Nodes[b].Pos))
		}
	}
	for d := 0; d < p.TransitDomains; d++ {
		if p.TransitDomains > 1 {
			link(d, (d+1)%p.TransitDomains)
		}
	}
	for i := 0; i < p.ExtraTransitLinks && p.TransitDomains > 1; i++ {
		d1 := rng.IntN(p.TransitDomains)
		d2 := rng.IntN(p.TransitDomains)
		if d1 != d2 {
			link(d1, d2)
		}
	}

	// Stub domains: each homed on its transit node.
	stubRegion := region * 0.6
	for d := 0; d < p.TransitDomains; d++ {
		for _, tn := range transitNodes[d] {
			for s := 0; s < p.StubsPerTransit; s++ {
				sub, err := Waxman(rng.Split(), WaxmanParams{
					N: p.StubNodes, Alpha: p.WaxmanAlpha, Beta: p.WaxmanBeta,
					PlaneSize: stubRegion, MinDegree: minInt(2, p.StubNodes-1, 1),
				})
				if err != nil {
					return nil, err
				}
				as := nextAS
				nextAS++
				base := g.N()
				// Stub placed near its transit node.
				off := Point{
					X: g.Nodes[tn].Pos.X + rng.Uniform(-region, region),
					Y: g.Nodes[tn].Pos.Y + rng.Uniform(-region, region),
				}
				for _, n := range sub.Nodes {
					g.AddNode(Point{X: off.X + n.Pos.X, Y: off.Y + n.Pos.Y}, as)
				}
				for _, e := range sub.Edges {
					g.AddEdge(base+e.A, base+e.B, g.Nodes[base+e.A].Pos.Dist(g.Nodes[base+e.B].Pos))
				}
				// Home link: gateway stub node 0 to the transit node.
				g.AddEdge(base, tn, g.Nodes[base].Pos.Dist(g.Nodes[tn].Pos))
			}
		}
	}
	if !g.Connected() {
		connectComponents(g) // unreachable by construction; kept as a guard
	}
	return g, nil
}
