package core_test

import (
	"fmt"

	"dvecap/internal/core"
	"dvecap/internal/xrand"
)

// ExampleTwoPhase_Solve shows the paper's best algorithm on a minimal
// hand-built instance: two servers, two zones, three clients.
func ExampleTwoPhase_Solve() {
	p := &core.Problem{
		ServerCaps:  []float64{10, 10},
		ClientZones: []int{0, 0, 1},
		NumZones:    2,
		ClientRT:    []float64{1, 1, 1},
		CS: [][]float64{
			{50, 300},
			{80, 300},
			{300, 50},
		},
		SS: [][]float64{{0, 40}, {40, 0}},
		D:  100,
	}
	a, err := core.GreZGreC.Solve(xrand.New(1), p, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := core.Evaluate(p, a)
	fmt.Printf("zones on servers %v, pQoS %.2f\n", a.ZoneServer, m.PQoS)
	// Output: zones on servers [0 1], pQoS 1.00
}

// ExampleEvaluate demonstrates scoring an assignment against ground truth.
func ExampleEvaluate() {
	p := &core.Problem{
		ServerCaps:  []float64{10},
		ClientZones: []int{0, 0},
		NumZones:    1,
		ClientRT:    []float64{1, 1},
		CS:          [][]float64{{100}, {400}},
		SS:          [][]float64{{0}},
		D:           250,
	}
	a := &core.Assignment{ZoneServer: []int{0}, ClientContact: []int{0, 0}}
	m := core.Evaluate(p, a)
	fmt.Printf("%d of %d clients with QoS\n", m.WithQoS, len(m.Delays))
	// Output: 1 of 2 clients with QoS
}

// ExampleDiff shows migration-cost accounting between two assignments.
func ExampleDiff() {
	p := &core.Problem{
		ServerCaps:  []float64{10, 10},
		ClientZones: []int{0, 0},
		NumZones:    1,
		ClientRT:    []float64{1, 1},
		CS:          [][]float64{{100, 150}, {100, 150}},
		SS:          [][]float64{{0, 40}, {40, 0}},
		D:           250,
	}
	before := &core.Assignment{ZoneServer: []int{0}, ClientContact: []int{0, 0}}
	after := &core.Assignment{ZoneServer: []int{1}, ClientContact: []int{1, 1}}
	d := core.Diff(p, before, after)
	fmt.Printf("zone moves %d, contact moves %d, migrated %.0f Mbps\n",
		d.ZoneMoves, d.ContactMoves, d.MigratedRT)
	// Output: zone moves 1, contact moves 2, migrated 2 Mbps
}
