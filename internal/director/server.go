package director

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// API error body.
type apiError struct {
	Error string `json:"error"`
}

// Handler returns the director's HTTP API:
//
//	POST   /v1/clients              {"id"?, "node", "zone"} → ClientInfo
//	GET    /v1/clients              → []ClientInfo
//	GET    /v1/clients/{id}         → ClientInfo
//	DELETE /v1/clients/{id}         → 204
//	POST   /v1/clients/{id}/move    {"zone"} → ClientInfo
//	POST   /v1/clients/{id}/delays  {"rtts_ms": [...]} → ClientInfo
//	POST   /v1/reassign             → ReassignResult
//	GET    /v1/stats                → Stats
//	GET    /v1/healthz              → 200 "ok"
//
// Status codes follow the usual discipline: 404 for unknown clients
// (errors.Is ErrUnknownClient) and unknown routes, 405 for a known route
// with the wrong method, 400 for malformed or invalid request bodies.
func Handler(d *Director) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, d.Stats())
	})
	mux.HandleFunc("/v1/problem", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot the live state as a problem JSON, so operators can run
		// the exact solver (or any offline analysis) against production
		// reality: curl …/v1/problem | capassign -in /dev/stdin -exact
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		p := d.ProblemSnapshot()
		w.Header().Set("Content-Type", "application/json")
		if err := p.WriteJSON(w); err != nil {
			// Headers already sent; nothing more to do than log-by-status.
			return
		}
	})
	mux.HandleFunc("/v1/reassign", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		res, err := d.Reassign()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("/v1/clients", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req struct {
				ID   string `json:"id"`
				Node int    `json:"node"`
				Zone int    `json:"zone"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
				return
			}
			info, err := d.Join(req.ID, req.Node, req.Zone)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err.Error())
				return
			}
			writeJSON(w, http.StatusCreated, info)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, d.Snapshot())
		default:
			writeErr(w, http.StatusMethodNotAllowed, "GET or POST")
		}
	})
	mux.HandleFunc("/v1/clients/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/clients/")
		parts := strings.Split(rest, "/")
		id := parts[0]
		if id == "" {
			writeErr(w, http.StatusBadRequest, "missing client id")
			return
		}
		switch {
		case len(parts) == 1:
			switch r.Method {
			case http.MethodGet:
				info, err := d.Lookup(id)
				if err != nil {
					writeClientErr(w, err)
					return
				}
				writeJSON(w, http.StatusOK, info)
			case http.MethodDelete:
				if err := d.Leave(id); err != nil {
					writeClientErr(w, err)
					return
				}
				w.WriteHeader(http.StatusNoContent)
			default:
				writeErr(w, http.StatusMethodNotAllowed, "GET or DELETE")
			}
		case len(parts) == 2 && parts[1] == "move":
			if r.Method != http.MethodPost {
				writeErr(w, http.StatusMethodNotAllowed, "POST only")
				return
			}
			var req struct {
				Zone int `json:"zone"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
				return
			}
			info, err := d.Move(id, req.Zone)
			if err != nil {
				writeClientErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, info)
		case len(parts) == 2 && parts[1] == "delays":
			if r.Method != http.MethodPost {
				writeErr(w, http.StatusMethodNotAllowed, "POST only")
				return
			}
			var req struct {
				RTTsMs []float64 `json:"rtts_ms"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
				return
			}
			info, err := d.UpdateDelays(id, req.RTTsMs)
			if err != nil {
				writeClientErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, info)
		default:
			writeErr(w, http.StatusNotFound, "unknown route")
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

// writeClientErr maps a client-keyed operation's error onto a status:
// 404 when the client is unknown (errors.Is, not message sniffing),
// 400 for everything else (invalid zone, malformed delay row, …).
func writeClientErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, ErrUnknownClient) {
		status = http.StatusNotFound
	}
	writeErr(w, status, err.Error())
}
