package experiments

import (
	"fmt"
	"strings"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/metrics"
	"dvecap/internal/runner"
	"dvecap/internal/xrand"
)

// AblationOptions tunes the extension/ablation study (not in the paper;
// DESIGN.md §5): static vs dynamic regret in the greedy zone assignment,
// and the effect of a local-search post-optimiser.
type AblationOptions struct {
	// Scenario defaults to 20s-80z-1000c-500cp.
	Scenario string
	// LocalSearchRounds caps hill-climbing passes (default 3).
	LocalSearchRounds int
}

// AblationRow is one variant's quality.
type AblationRow struct {
	Variant string
	PQoS    metrics.Summary
	R       metrics.Summary
	IAPCost metrics.Summary
}

// AblationResult compares GreZ-GreC against its dynamic-regret variant and
// against both with a local-search pass appended.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation runs the study.
func Ablation(setup Setup, opt AblationOptions) (*AblationResult, error) {
	setup = setup.withDefaults()
	if opt.Scenario == "" {
		opt.Scenario = "20s-80z-1000c-500cp"
	}
	if opt.LocalSearchRounds == 0 {
		opt.LocalSearchRounds = 3
	}
	cfg, err := dve.ParseScenario(dve.DefaultConfig(), opt.Scenario)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name  string
		algo  core.TwoPhase
		local bool
	}{
		{"GreZ-GreC (paper)", core.GreZGreC, false},
		{"DynZ-GreC (dynamic regret)", core.DynZGreC, false},
		{"GreZ-GreC + LocalSearch", core.GreZGreC, true},
		{"DynZ-GreC + LocalSearch", core.DynZGreC, true},
	}

	type row map[string][3]float64
	reps, err := runner.Run(setup.Seed, setup.Reps, func(rep int, rng *xrand.RNG) (row, error) {
		world, err := setup.buildWorld(rng.Split(), cfg)
		if err != nil {
			return nil, err
		}
		truth := world.Problem()
		out := make(row, len(variants))
		// One workspace, evaluator and metrics buffer per replication:
		// every variant's solve, local search and evaluation reuses them.
		sopt := scratchOpts()
		var ev core.Evaluator
		var m core.Metrics
		for _, v := range variants {
			a, err := v.algo.Solve(rng.Split(), truth, sopt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.name, err)
			}
			if v.local {
				ev.Reset(truth, a)
				ev.LocalSearch(opt.LocalSearchRounds)
				a = ev.Assignment()
			}
			sopt.Scratch.EvaluateInto(truth, a, &m)
			out[v.name] = [3]float64{m.PQoS, m.Utilization, float64(core.IAPCost(truth, a.ZoneServer))}
		}
		return out, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}

	res := &AblationResult{}
	for _, v := range variants {
		r := AblationRow{Variant: v.name}
		for _, rm := range reps {
			vals := rm[v.name]
			r.PQoS.Add(vals[0])
			r.R.Add(vals[1])
			r.IAPCost.Add(vals[2])
		}
		res.Rows = append(res.Rows, r)
	}
	return res, nil
}

// String renders the comparison.
func (r *AblationResult) String() string {
	tb := metrics.NewTable("variant", "pQoS", "R", "IAP cost")
	for _, row := range r.Rows {
		tb.AddRow(row.Variant,
			fmt.Sprintf("%.3f ± %.3f", row.PQoS.Mean(), row.PQoS.CI95()),
			fmt.Sprintf("%.3f", row.R.Mean()),
			fmt.Sprintf("%.1f", row.IAPCost.Mean()))
	}
	var b strings.Builder
	b.WriteString("Ablation: regret policy and local search (extension beyond the paper)\n")
	b.WriteString(tb.String())
	return b.String()
}
