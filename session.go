package dvecap

import (
	"fmt"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/repair"
)

// Session is the incremental counterpart of Assign: it solves the
// scenario once, then keeps the solution repaired under churn in
// O(affected) per event through the churn-repair subsystem, instead of
// re-running the full two-phase algorithm after every change. A session
// owns the scenario's dynamics while open — interleaving Scenario.Churn
// with session events is not supported.
//
// Session is a thin adapter binding the scenario's generated world to a
// ClusterSession: world churn draws become ID-keyed cluster events, and
// the population-dependent bandwidth model is replayed through
// SetZoneBandwidth before each event, exactly as a real deployment would
// drive the public API.
type Session struct {
	scn  *Scenario
	cs   *ClusterSession
	algo string
	// ids[j] is the cluster ID of the world's j-th client, compacted in
	// lockstep with the world's own arrays on leaves.
	ids  []string
	next int // next fresh client number
	// zonePop mirrors the world's per-zone population for the bandwidth
	// model (one state update per frame covers the whole zone).
	zonePop []int
	rowBuf  []float64
}

// SessionStats mirrors the repair subsystem's counters.
type SessionStats struct {
	// Joins, Leaves and Moves count the churn events applied (a JoinBatch
	// counts one join per admitted client).
	Joins, Leaves, Moves int
	// DelayUpdates counts measured-delay refreshes streamed into the
	// planner (ClusterSession.UpdateDelays, or one per UpdateServerDelays
	// column; always 0 for world-backed sessions, whose delays are ground
	// truth).
	DelayUpdates int
	// Topology counters: servers added, drained and removed, zones added
	// and retired on the live session (always 0 for world-backed
	// sessions, whose topology is frozen).
	ServerAdds, ServerDrains, ServerRemoves int
	ZoneAdds, ZoneRetires                   int
	// FullSolves counts full two-phase re-solves (the initial one, drift-
	// triggered ones, and explicit Resolve calls). ImbalanceSolves counts
	// the subset triggered by the load-imbalance guard alone
	// (WithImbalanceGuard) — utilization spread drifted while pQoS held.
	FullSolves      int
	ImbalanceSolves int
	// ZoneHandoffs counts zone rehostings; ContactSwitches counts contact
	// re-placements made by the repair path.
	ZoneHandoffs, ContactSwitches int
	// AdjacencyEdits counts interaction-graph edge updates applied
	// (SetZoneAdjacency, AddAdjacencyWeight and ZoneSpec.Adjacency seeds;
	// always 0 for world-backed sessions).
	AdjacencyEdits int
	// LastDriftPQoS is the current pQoS decay below the last full solve;
	// LastUtilSpread the current max−min per-server utilization spread over
	// non-drained servers.
	LastDriftPQoS  float64
	LastUtilSpread float64
	// LastSolveError reports a failed drift-guard full solve (empty when
	// the last one succeeded).
	LastSolveError string
}

// sessionStatsFrom maps the repair planner's counters into the public
// shape — the one construction shared by Session and ClusterSession.
func sessionStatsFrom(st repair.Stats) SessionStats {
	return SessionStats{
		Joins:           st.Joins,
		Leaves:          st.Leaves,
		Moves:           st.Moves,
		DelayUpdates:    st.DelayUpdates,
		ServerAdds:      st.ServerAdds,
		ServerDrains:    st.ServerDrains,
		ServerRemoves:   st.ServerRemoves,
		ZoneAdds:        st.ZoneAdds,
		ZoneRetires:     st.ZoneRetires,
		FullSolves:      st.FullSolves,
		ImbalanceSolves: st.ImbalanceSolves,
		ZoneHandoffs:    st.ZoneHandoffs,
		ContactSwitches: st.ContactSwitches,
		AdjacencyEdits:  st.AdjacencyEdits,
		LastDriftPQoS:   st.LastDriftPQoS,
		LastUtilSpread:  st.LastUtilSpread,
		LastSolveError:  st.LastSolveError,
	}
}

// StartSession solves the scenario's current state with the named
// algorithm and returns a session that repairs the solution incrementally
// as clients join, leave and move. The drift guard is armed at driftPQoS
// (≤ 0 takes the default 0.02): quality decay past it triggers one
// amortized full re-solve.
func (s *Scenario) StartSession(algorithm string, driftPQoS float64) (*Session, error) {
	if driftPQoS <= 0 {
		driftPQoS = 0.02
	}
	view := s.clusterView()
	cs, err := view.Open(algorithm, withRNG(s.rng), WithDriftGuard(driftPQoS))
	if err != nil {
		return nil, err
	}
	k := s.world.NumClients()
	ids := make([]string, k)
	for j := range ids {
		ids[j] = fmt.Sprintf("c%d", j)
	}
	return &Session{
		scn:     s,
		cs:      cs,
		algo:    algorithm,
		ids:     ids,
		next:    k,
		zonePop: s.world.ZonePopulations(),
		rowBuf:  make([]float64, s.world.Cfg.Servers),
	}, nil
}

// zoneID maps a world zone index to its cluster-view zone ID.
func (sess *Session) zoneID(z int) string { return sess.cs.zoneIDAt(z) }

// freshID mints a session-unique cluster ID for a newly joined client.
func (sess *Session) freshID() string {
	id := fmt.Sprintf("c%d", sess.next)
	sess.next++
	return id
}

// Join admits n clients drawn from the scenario's placement models,
// repairing around each zone they land in. The zone's incumbents are
// re-priced to the new population's bandwidth before each event, so the
// repair pass judges feasibility against up-to-date loads.
func (sess *Session) Join(n int) error {
	w := sess.scn.world
	for _, j := range w.Join(sess.scn.rng.Split(), n) {
		zone := w.ClientZones[j]
		cn := w.ClientNodes[j]
		for i := range sess.rowBuf {
			sess.rowBuf[i] = w.Delays.RTT(cn, w.ServerNodes[i])
		}
		sess.zonePop[zone]++
		rt := w.Cfg.ClientRTMbps(sess.zonePop[zone])
		if err := sess.cs.SetZoneBandwidth(sess.zoneID(zone), rt); err != nil {
			return err
		}
		id := sess.freshID()
		if err := sess.cs.Join(id, ClientSpec{
			Zone:          sess.zoneID(zone),
			BandwidthMbps: rt,
			RTTRow:        sess.rowBuf,
		}); err != nil {
			return err
		}
		sess.ids = append(sess.ids, id)
	}
	return nil
}

// Leave removes n uniformly chosen clients. The ID map is compacted even
// when a removal errors, so the session stays aligned with the world —
// which has already forgotten these clients.
func (sess *Session) Leave(n int) error {
	removed, err := sess.scn.world.Leave(sess.scn.rng.Split(), n)
	if err != nil {
		return err
	}
	var firstErr error
	for _, r := range removed {
		if err := sess.leaveOne(sess.ids[r]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	sess.ids = dve.Compact(sess.ids, removed)
	return firstErr
}

func (sess *Session) leaveOne(id string) error {
	cl, err := sess.cs.Client(id)
	if err != nil {
		return err
	}
	zone, err := sess.cs.zone(cl.Zone)
	if err != nil {
		return err
	}
	// Re-price to the post-departure population before the event (the
	// departing client is re-priced too — its smaller requirement is
	// subtracted consistently), so Leave's repair pass sees exact loads.
	sess.zonePop[zone]--
	if sess.zonePop[zone] > 0 {
		rt := sess.scn.world.Cfg.ClientRTMbps(sess.zonePop[zone])
		if err := sess.cs.SetZoneBandwidth(cl.Zone, rt); err != nil {
			return err
		}
	}
	return sess.cs.Leave(id)
}

// Move migrates n uniformly chosen clients to newly drawn zones. Both
// zones' bandwidth is brought up to date before each event — the vacated
// zone's incumbents to the shrunk population's requirement, the entered
// zone's incumbents and the mover itself to the grown one's.
func (sess *Session) Move(n int) error {
	w := sess.scn.world
	moved, err := w.Move(sess.scn.rng.Split(), n)
	if err != nil {
		return err
	}
	for _, j := range moved {
		id := sess.ids[j]
		cl, err := sess.cs.Client(id)
		if err != nil {
			return err
		}
		oldZone, err := sess.cs.zone(cl.Zone)
		if err != nil {
			return err
		}
		newZone := w.ClientZones[j]
		if newZone == oldZone {
			continue
		}
		sess.zonePop[oldZone]--
		sess.zonePop[newZone]++
		if sess.zonePop[oldZone] > 0 {
			rt := w.Cfg.ClientRTMbps(sess.zonePop[oldZone])
			if err := sess.cs.SetZoneBandwidth(sess.zoneID(oldZone), rt); err != nil {
				return err
			}
		}
		newRT := w.Cfg.ClientRTMbps(sess.zonePop[newZone])
		if err := sess.cs.SetZoneBandwidth(sess.zoneID(newZone), newRT); err != nil {
			return err
		}
		if err := sess.cs.SetBandwidth(id, newRT); err != nil {
			return err
		}
		if err := sess.cs.Move(id, sess.zoneID(newZone)); err != nil {
			return err
		}
	}
	return nil
}

// Resolve forces one full two-phase re-solve, re-anchoring the drift
// baseline — the session equivalent of POST /v1/reassign.
func (sess *Session) Resolve() error { return sess.cs.Resolve() }

// NumClients returns the current population.
func (sess *Session) NumClients() int { return sess.cs.NumClients() }

// Result evaluates the maintained solution against the scenario's ground
// truth, in the same shape Assign returns (clients in world order).
func (sess *Session) Result() (*Result, error) {
	truth := sess.scn.world.Problem()
	pl := sess.cs.planner()
	a := &core.Assignment{
		ZoneServer:    pl.ZoneServers(),
		ClientContact: make([]int, len(sess.ids)),
	}
	for j, id := range sess.ids {
		c, err := sess.cs.contactIndex(id)
		if err != nil {
			return nil, err
		}
		a.ClientContact[j] = c
	}
	m := core.Evaluate(truth, a)
	return newResult(sess.algo, truth, a, m, nil), nil
}

// Stats returns the session's repair counters.
func (sess *Session) Stats() SessionStats {
	return sess.cs.Stats()
}
