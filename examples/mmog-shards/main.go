// MMOG shards: the hot-zone scenario from the paper's Figure 6. A few
// zones of the virtual world (boss arenas, market hubs) attract 10× the
// clients of ordinary zones, which inflates per-zone bandwidth demand
// quadratically and stresses the capacity constraints. The example shows
// how each algorithm copes, and how much worse everything gets when
// players also cluster geographically (evening peak in one region).
//
//	go run ./examples/mmog-shards
package main

import (
	"fmt"
	"log"

	"dvecap"
)

func run(label string, params dvecap.ScenarioParams) {
	scn, err := dvecap.NewScenario(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", label)
	fmt.Printf("%-12s %8s %8s\n", "algorithm", "pQoS", "R")
	for _, name := range []string{"RanZ-VirC", "RanZ-GreC", "GreZ-VirC", "GreZ-GreC"} {
		res, err := scn.Assign(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.3f %8.3f\n", name, res.PQoS, res.Utilization)
	}
	fmt.Println()
}

func main() {
	base := dvecap.ScenarioParams{Seed: 7, Correlation: 0.5}

	run("uniform world (type 1)", base)

	hotZones := base
	hotZones.ClusteredVirtual = true
	run("hot zones: 10x players in popular shards (type 3)", hotZones)

	both := hotZones
	both.ClusteredPhysical = true
	run("hot zones + regional evening peak (type 4)", both)

	fmt.Println("Hot virtual zones drive utilisation up sharply (zone bandwidth grows")
	fmt.Println("quadratically with population); GreZ-GreC keeps the best interactivity")
	fmt.Println("throughout, exactly the shape of the paper's Figure 6.")
}
