package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Sample std of this classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 must be positive for n > 1")
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary not zero")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatal("single-sample summary wrong")
	}
}

func TestSummaryMatchesNaiveComputation(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, v := range vals {
			s.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		var sq float64
		for _, v := range vals {
			sq += (v - mean) * (v - mean)
		}
		naiveVar := sq / float64(len(vals)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(s.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Var()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	if p := Percentile(samples, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(samples, 1); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(samples, 0.5); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(samples, 0.25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	// Interpolated.
	if p := Percentile([]float64{0, 10}, 0.5); p != 5 {
		t.Fatalf("interpolated p50 = %v", p)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 0.5) },
		func() { Percentile([]float64{1}, -0.1) },
		func() { Percentile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	cases := []struct{ x, want float64 }{
		{5, 0}, {10, 0.25}, {15, 0.25}, {20, 0.5}, {39.99, 0.75}, {40, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		prev := -1.0
		// Probe at sorted positions.
		xs := append([]float64(nil), vals...)
		for _, x := range xs {
			y := c.At(x)
			if y < 0 || y > 1 {
				return false
			}
			_ = prev
		}
		// Monotonicity over increasing probes.
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		last := -1.0
		for i := 0; i <= 20; i++ {
			x := lo + (hi-lo)*float64(i)/20
			y := c.At(x)
			if y < last {
				return false
			}
			last = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if q := c.Quantile(0.5); q != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", q)
	}
	if q := c.Quantile(1); q != 4 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{100, 200, 300})
	pts := c.Series(100, 300, 4)
	if len(pts) != 5 {
		t.Fatalf("series has %d points", len(pts))
	}
	if pts[0].X != 100 || pts[4].X != 300 {
		t.Fatalf("series endpoints wrong: %v", pts)
	}
	if pts[4].Y != 1 {
		t.Fatalf("series must reach 1 at max: %v", pts[4].Y)
	}
	out := FormatSeries(pts)
	if !strings.Contains(out, "\t") || !strings.Contains(out, "\n") {
		t.Fatal("FormatSeries layout wrong")
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) != 0")
	}
	if MeanOf([]float64{2, 4}) != 3 {
		t.Fatal("MeanOf broken")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("alg", "pQoS", "R")
	tb.AddRow("GreZ-GreC", "0.94", "0.66")
	tb.AddRow("RanZ-VirC", "0.61")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "alg") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(lines[2], "GreZ-GreC") || !strings.Contains(lines[2], "0.94") {
		t.Fatalf("row content missing:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}
