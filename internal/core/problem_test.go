package core

import (
	"strings"
	"testing"

	"dvecap/internal/xrand"
)

func TestProblemValidateAcceptsTiny(t *testing.T) {
	if err := tinyProblem().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProblemValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *Problem)
		wantSub string
	}{
		{"no servers", func(p *Problem) { p.ServerCaps = nil }, "no servers"},
		{"no zones", func(p *Problem) { p.NumZones = 0 }, "zones"},
		{"bad bound", func(p *Problem) { p.D = 0 }, "delay bound"},
		{"bad capacity", func(p *Problem) { p.ServerCaps[1] = -5 }, "capacity"},
		{"bad zone index", func(p *Problem) { p.ClientZones[0] = 9 }, "zone"},
		{"zero RT", func(p *Problem) { p.ClientRT[2] = 0 }, "RT"},
		{"ragged CS", func(p *Problem) { p.CS[1] = p.CS[1][:1] }, "CS row"},
		{"negative CS", func(p *Problem) { p.CS[0][1] = -1 }, "CS[0][1]"},
		{"ragged SS", func(p *Problem) { p.SS[0] = p.SS[0][:1] }, "SS row"},
		{"SS diagonal", func(p *Problem) { p.SS[1][1] = 3 }, "diagonal"},
		{"RT length", func(p *Problem) { p.ClientRT = p.ClientRT[:1] }, "RT entries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tinyProblem()
			tc.corrupt(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("corruption %q not caught", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestZoneClientsAndRT(t *testing.T) {
	p := tinyProblem()
	zc := p.ZoneClients()
	if len(zc) != 2 || len(zc[0]) != 2 || len(zc[1]) != 1 {
		t.Fatalf("ZoneClients = %v", zc)
	}
	rt := p.ZoneRT()
	if rt[0] != 2 || rt[1] != 1 {
		t.Fatalf("ZoneRT = %v", rt)
	}
	if p.TotalCapacity() != 20 {
		t.Fatalf("TotalCapacity = %v", p.TotalCapacity())
	}
}

func TestProblemCloneIsDeep(t *testing.T) {
	p := tinyProblem()
	q := p.Clone()
	q.CS[0][0] = 999
	q.SS[0][1] = 999
	q.ServerCaps[0] = 999
	q.ClientZones[0] = 1
	if p.CS[0][0] == 999 || p.SS[0][1] == 999 || p.ServerCaps[0] == 999 || p.ClientZones[0] == 1 {
		t.Fatal("Clone aliases parent storage")
	}
}

func TestWithDelaysCopiesMatrices(t *testing.T) {
	p := tinyProblem()
	cs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ss := [][]float64{{0, 1}, {1, 0}}
	q := p.WithDelays(cs, ss)
	if &q.CS[0][0] == &cs[0][0] || &q.SS[0][0] == &ss[0][0] {
		t.Fatal("WithDelays aliases the caller's matrices")
	}
	// Mutating the caller's matrices after the call must not leak into the
	// derived problem — the historical shallow copy made estimator updates
	// silently corrupt solved snapshots.
	cs[0][0], ss[0][1] = 999, 999
	if q.CS[0][0] == 999 || q.SS[0][1] == 999 {
		t.Fatal("WithDelays result sees caller-side mutation")
	}
	if q.D != p.D || q.NumZones != p.NumZones {
		t.Fatal("WithDelays changed unrelated fields")
	}
	if p.CS[0][0] == 1 {
		t.Fatal("WithDelays mutated the original")
	}
}

func TestWithDelaysOwnedTransfersOwnership(t *testing.T) {
	p := tinyProblem()
	cs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ss := [][]float64{{0, 1}, {1, 0}}
	q := p.WithDelaysOwned(cs, ss)
	if &q.CS[0][0] != &cs[0][0] || &q.SS[0][0] != &ss[0][0] {
		t.Fatal("WithDelaysOwned did not take the provided matrices")
	}
	if q.D != p.D || q.NumZones != p.NumZones {
		t.Fatal("WithDelaysOwned changed unrelated fields")
	}
}

func TestWithDelaysDropsProvider(t *testing.T) {
	p := tinyProblem()
	p.Delays = NewDenseProvider(p.CS, p.NumServers())
	p.CS = nil
	cs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ss := [][]float64{{0, 1}, {1, 0}}
	q := p.WithDelays(cs, ss)
	if q.Delays != nil {
		t.Fatal("WithDelays kept the stale provider alongside new dense CS")
	}
	if q.CS[0][0] != 1 {
		t.Fatalf("WithDelays CS = %v", q.CS[0][0])
	}
}

func TestRandomProblemsValid(t *testing.T) {
	rng := xrand.New(99)
	for i := 0; i < 50; i++ {
		if err := randomProblem(rng.Split(), i%2 == 0).Validate(); err != nil {
			t.Fatalf("random problem %d invalid: %v", i, err)
		}
	}
}
