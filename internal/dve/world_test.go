package dve

import (
	"math"
	"testing"

	"dvecap/internal/topology"
	"dvecap/internal/xrand"
)

// testTopo builds a small hierarchical topology + delays shared by tests.
func testTopo(t *testing.T) (*topology.Graph, *topology.DelayMatrix) {
	t.Helper()
	p := topology.DefaultHier()
	p.ASCount = 5
	p.NodesPerAS = 10
	g, err := topology.Hier(xrand.New(1), p)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return g, dm
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Servers = 5
	cfg.Zones = 20
	cfg.Clients = 200
	cfg.TotalCapacityMbps = 200
	return cfg
}

func TestBuildWorldBasics(t *testing.T) {
	g, dm := testTopo(t)
	w, err := BuildWorld(xrand.New(2), testConfig(), g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumClients() != 200 {
		t.Fatalf("clients = %d", w.NumClients())
	}
	// Server nodes distinct.
	seen := map[int]bool{}
	for _, n := range w.ServerNodes {
		if seen[n] {
			t.Fatal("duplicate server node")
		}
		seen[n] = true
	}
	// Capacity floor + total.
	var total float64
	for _, c := range w.ServerCaps {
		if c < w.Cfg.MinCapacityMbps-1e-9 {
			t.Fatalf("capacity %v below floor", c)
		}
		total += c
	}
	if math.Abs(total-200) > 1e-6 {
		t.Fatalf("total capacity %v, want 200", total)
	}
}

func TestBuildWorldDeterministic(t *testing.T) {
	g, dm := testTopo(t)
	a, _ := BuildWorld(xrand.New(3), testConfig(), g, dm)
	b, _ := BuildWorld(xrand.New(3), testConfig(), g, dm)
	for j := range a.ClientNodes {
		if a.ClientNodes[j] != b.ClientNodes[j] || a.ClientZones[j] != b.ClientZones[j] {
			t.Fatalf("client %d differs across identical builds", j)
		}
	}
}

func TestBuildWorldRejectsBadInput(t *testing.T) {
	g, dm := testTopo(t)
	cfg := testConfig()
	cfg.Servers = 0
	if _, err := BuildWorld(xrand.New(1), cfg, g, dm); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg = testConfig()
	cfg.Servers = g.N() + 1
	if _, err := BuildWorld(xrand.New(1), cfg, g, dm); err == nil {
		t.Fatal("more servers than nodes accepted")
	}
	empty := topology.NewGraph(0, 0)
	if _, err := BuildWorld(xrand.New(1), testConfig(), empty, dm); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestClusteredVirtualWorldConcentratesClients(t *testing.T) {
	g, dm := testTopo(t)
	cfg := testConfig()
	cfg.Clients = 2000
	cfg.VirtualDist = Clustered
	cfg.Correlation = 0 // isolate the clustering effect
	w, err := BuildWorld(xrand.New(4), cfg, g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.HotZones) == 0 {
		t.Fatal("no hot zones designated")
	}
	pop := w.ZonePopulations()
	var hotPop, coldPop, hotN, coldN int
	for z, p := range pop {
		if w.HotZones[z] {
			hotPop += p
			hotN++
		} else {
			coldPop += p
			coldN++
		}
	}
	hotMean := float64(hotPop) / float64(hotN)
	coldMean := float64(coldPop) / float64(coldN)
	// Hot zones are 10× likelier; sampling noise allows some slack.
	if hotMean < 5*coldMean {
		t.Fatalf("hot zones not hot: hot mean %v vs cold mean %v", hotMean, coldMean)
	}
}

func TestClusteredPhysicalWorldConcentratesClients(t *testing.T) {
	g, dm := testTopo(t)
	cfg := testConfig()
	cfg.Clients = 3000
	cfg.PhysicalDist = Clustered
	w, err := BuildWorld(xrand.New(5), cfg, g, dm)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[int]int{}
	for _, n := range w.ClientNodes {
		perNode[n]++
	}
	var hotPop, coldPop int
	hotN := len(w.HotNodes)
	coldN := g.N() - hotN
	for n, c := range perNode {
		if w.HotNodes[n] {
			hotPop += c
		} else {
			coldPop += c
		}
	}
	hotMean := float64(hotPop) / float64(hotN)
	coldMean := float64(coldPop) / float64(coldN)
	if hotMean < 5*coldMean {
		t.Fatalf("hot nodes not hot: %v vs %v", hotMean, coldMean)
	}
}

func TestCorrelationBindsRegionToZoneBlock(t *testing.T) {
	g, dm := testTopo(t)
	cfg := testConfig()
	cfg.Clients = 3000
	cfg.Correlation = 1.0
	w, err := BuildWorld(xrand.New(6), cfg, g, dm)
	if err != nil {
		t.Fatal(err)
	}
	// With δ=1 every client's zone must lie in its region's block.
	for j := range w.ClientNodes {
		region := g.Nodes[w.ClientNodes[j]].AS
		block := w.regionZones[region]
		found := false
		for _, z := range block {
			if z == w.ClientZones[j] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("client %d in zone %d outside region %d block %v",
				j, w.ClientZones[j], region, block)
		}
	}
}

func TestZeroCorrelationIgnoresRegions(t *testing.T) {
	g, dm := testTopo(t)
	cfg := testConfig()
	cfg.Clients = 5000
	cfg.Correlation = 0
	w, err := BuildWorld(xrand.New(7), cfg, g, dm)
	if err != nil {
		t.Fatal(err)
	}
	// Every zone should see traffic (5000 clients over 20 zones).
	for z, p := range w.ZonePopulations() {
		if p == 0 {
			t.Fatalf("zone %d empty despite uniform δ=0 placement", z)
		}
	}
}

func TestSplitZonesIntoBlocks(t *testing.T) {
	blocks := splitZonesIntoBlocks(10, 3)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	seen := map[int]bool{}
	count := 0
	for _, b := range blocks {
		if len(b) == 0 {
			t.Fatal("empty block")
		}
		for _, z := range b {
			if seen[z] {
				t.Fatalf("zone %d in two blocks", z)
			}
			seen[z] = true
			count++
		}
	}
	if count != 10 {
		t.Fatalf("blocks cover %d zones, want 10", count)
	}
	// Fewer zones than regions: every region still has a preference.
	blocks = splitZonesIntoBlocks(2, 5)
	for i, b := range blocks {
		if len(b) != 1 {
			t.Fatalf("region %d block %v", i, b)
		}
	}
}

func TestWorldCloneIndependence(t *testing.T) {
	g, dm := testTopo(t)
	w, _ := BuildWorld(xrand.New(8), testConfig(), g, dm)
	c := w.Clone()
	c.ClientZones[0] = (c.ClientZones[0] + 1) % c.Cfg.Zones
	c.ServerCaps[0] += 5
	if w.ClientZones[0] == c.ClientZones[0] || w.ServerCaps[0] == c.ServerCaps[0] {
		t.Fatal("Clone aliases parent")
	}
}

func TestProblemConversion(t *testing.T) {
	g, dm := testTopo(t)
	w, _ := BuildWorld(xrand.New(9), testConfig(), g, dm)
	p := w.Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumServers() != 5 || p.NumClients() != 200 || p.NumZones != 20 {
		t.Fatalf("problem shape wrong: %d/%d/%d", p.NumServers(), p.NumClients(), p.NumZones)
	}
	// Spot-check delay wiring: CS[j][i] must equal the ground-truth RTT.
	for _, j := range []int{0, 57, 199} {
		for i := 0; i < 5; i++ {
			want := dm.RTT(w.ClientNodes[j], w.ServerNodes[i])
			if p.CS[j][i] != want {
				t.Fatalf("CS[%d][%d] = %v, want %v", j, i, p.CS[j][i], want)
			}
		}
	}
	// SS must be the discounted server-server delay and symmetric.
	for i := 0; i < 5; i++ {
		for l := 0; l < 5; l++ {
			want := dm.ServerRTT(w.ServerNodes[i], w.ServerNodes[l])
			if p.SS[i][l] != want {
				t.Fatalf("SS[%d][%d] = %v, want %v", i, l, p.SS[i][l], want)
			}
		}
	}
}

func TestProblemSnapshotIsolatedFromWorld(t *testing.T) {
	g, dm := testTopo(t)
	w, _ := BuildWorld(xrand.New(10), testConfig(), g, dm)
	p := w.Problem()
	w.ClientZones[0] = (w.ClientZones[0] + 1) % w.Cfg.Zones
	if p.ClientZones[0] == w.ClientZones[0] {
		t.Fatal("problem snapshot aliases world state")
	}
}
