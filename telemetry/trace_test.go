package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerDeterministicWithInjectedClock(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	tick := 0
	tr.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 100 * time.Millisecond)
	})

	finish := tr.Span("join", "client", 17, "zone", 4)
	finish(nil)
	tr.Event("checkpoint", "lsn", 42)
	finish = tr.Span("solve")
	finish(errors.New("infeasible"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var evs []TraceEvent
	for i, ln := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", i, err, ln)
		}
		evs = append(evs, ev)
	}
	if evs[0].Op != "join" || evs[0].Seq != 1 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	// Span measured one clock tick = 100ms.
	if evs[0].Dur != 0.1 {
		t.Errorf("span duration %v, want 0.1", evs[0].Dur)
	}
	if evs[0].Attrs["client"] != float64(17) || evs[0].Attrs["zone"] != float64(4) {
		t.Errorf("attrs %v", evs[0].Attrs)
	}
	if evs[1].Op != "checkpoint" || evs[1].Dur != 0 || evs[1].Seq != 2 {
		t.Errorf("event 1 = %+v", evs[1])
	}
	if evs[2].Err != "infeasible" || evs[2].Seq != 3 {
		t.Errorf("event 2 = %+v", evs[2])
	}
	if !evs[0].Start.Equal(base.Add(100 * time.Millisecond)) {
		t.Errorf("start %v not from injected clock", evs[0].Start)
	}
}

func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&safeWriter{w: &buf})
	var wg sync.WaitGroup
	const n, per = 8, 200
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Span("op")(nil)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n*per {
		t.Fatalf("%d lines, want %d", len(lines), n*per)
	}
	seen := map[uint64]bool{}
	for _, ln := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("interleaved/corrupt line %q: %v", ln, err)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// safeWriter serializes writes; the tracer already holds its own lock, but
// bytes.Buffer is not safe if a future change ever emits outside it.
type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
