package dvecap

// Tests for the live-topology session surface: server/zone add, remove and
// drain on an open ClusterSession, batch join, and the grow-then-solve
// equivalence discipline — a session-grown topology must be bit-identical
// to an equivalently built static cluster, at every worker count.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// synthRTT is a deterministic synthetic RTT: client x (by number) to
// server i (by number), used to build grown and static fixtures from the
// same ground truth.
func synthRTT(x, i int) float64 {
	return float64(10 + (x*37+i*53)%200)
}

func synthServerRTT(a, b int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	return float64(15 + (a*29+b*41)%120)
}

// topoFixture describes the grown world both construction paths converge
// on: base servers/zones/clients plus one added server, one added zone,
// and a batch of late joiners.
type topoFixture struct {
	baseServers, baseZones, baseClients int
	lateClients                         int
}

func defaultTopoFixture() topoFixture {
	return topoFixture{baseServers: 4, baseZones: 8, baseClients: 60, lateClients: 20}
}

func (f topoFixture) serverID(i int) string { return fmt.Sprintf("s%02d", i) }
func (f topoFixture) zoneID(z int) string   { return fmt.Sprintf("z%02d", z) }
func (f topoFixture) clientID(x int) string { return fmt.Sprintf("c%03d", x) }

// addClient registers client x with its full synthetic RTT row over m
// servers, into zone x mod zones.
func (f topoFixture) clientSpec(x, m, zones int) ClientSpec {
	rtts := make(map[string]float64, m)
	for i := 0; i < m; i++ {
		rtts[f.serverID(i)] = synthRTT(x, i)
	}
	return ClientSpec{
		Zone:          f.zoneID(x % zones),
		BandwidthMbps: 1.5,
		RTTs:          rtts,
	}
}

// buildBase builds the pre-growth cluster (servers 0..baseServers-1, zones
// 0..baseZones-1, clients 0..baseClients-1).
func (f topoFixture) buildBase(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(120)
	for i := 0; i < f.baseServers; i++ {
		rtts := make(map[string]float64, i)
		for l := 0; l < i; l++ {
			rtts[f.serverID(l)] = synthServerRTT(i, l)
		}
		if err := c.AddServer(f.serverID(i), ServerSpec{CapacityMbps: 120, RTTs: rtts}); err != nil {
			t.Fatal(err)
		}
	}
	for z := 0; z < f.baseZones; z++ {
		if err := c.AddZone(f.zoneID(z)); err != nil {
			t.Fatal(err)
		}
	}
	for x := 0; x < f.baseClients; x++ {
		if err := c.AddClient(f.clientID(x), f.clientSpec(x, f.baseServers, f.baseZones)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// buildStatic builds the post-growth cluster directly: one more server,
// one more zone, and the late clients all present from the start.
func (f topoFixture) buildStatic(t *testing.T) *Cluster {
	t.Helper()
	m := f.baseServers + 1
	c := NewCluster(120)
	for i := 0; i < m; i++ {
		rtts := make(map[string]float64, i)
		for l := 0; l < i; l++ {
			rtts[f.serverID(l)] = synthServerRTT(i, l)
		}
		if err := c.AddServer(f.serverID(i), ServerSpec{CapacityMbps: 120, RTTs: rtts}); err != nil {
			t.Fatal(err)
		}
	}
	for z := 0; z < f.baseZones+1; z++ {
		if err := c.AddZone(f.zoneID(z)); err != nil {
			t.Fatal(err)
		}
	}
	for x := 0; x < f.baseClients+f.lateClients; x++ {
		spec := f.clientSpec(x, m, f.baseZones)
		if x >= f.baseClients {
			// Late joiners enter the new zone.
			spec.Zone = f.zoneID(f.baseZones)
		}
		if err := c.AddClient(f.clientID(x), spec); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// growSession replays the growth on a live session: AddServer (with full
// measured client columns), AddZone, then one JoinBatch of the late
// clients into the new zone.
func (f topoFixture) growSession(t *testing.T, sess *ClusterSession) {
	t.Helper()
	newSrv := f.baseServers
	rtts := make(map[string]float64, newSrv)
	for l := 0; l < newSrv; l++ {
		rtts[f.serverID(l)] = synthServerRTT(newSrv, l)
	}
	clientRTTs := make(map[string]float64, f.baseClients)
	for x := 0; x < f.baseClients; x++ {
		clientRTTs[f.clientID(x)] = synthRTT(x, newSrv)
	}
	if err := sess.AddServer(f.serverID(newSrv), ServerSpec{
		CapacityMbps: 120,
		RTTs:         rtts,
		ClientRTTs:   clientRTTs,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddZone(f.zoneID(f.baseZones), ZoneSpec{}); err != nil {
		t.Fatal(err)
	}
	joins := make([]ClientJoin, 0, f.lateClients)
	for x := f.baseClients; x < f.baseClients+f.lateClients; x++ {
		spec := f.clientSpec(x, f.baseServers+1, f.baseZones)
		spec.Zone = f.zoneID(f.baseZones)
		joins = append(joins, ClientJoin{ID: f.clientID(x), Spec: spec})
	}
	if err := sess.JoinBatch(joins); err != nil {
		t.Fatal(err)
	}
}

// TestGrownTopologyMatchesStaticCluster is the tentpole equivalence: a
// session that grows its topology live (AddServer with measured columns,
// AddZone, JoinBatch) and then re-solves must be bit-identical — results,
// populations — to a session opened over the statically built grown
// cluster, at every worker count; and the grown session's full trajectory
// (result AND repair counters) must be identical across worker counts.
func TestGrownTopologyMatchesStaticCluster(t *testing.T) {
	f := defaultTopoFixture()
	type outcome struct {
		res   *Result
		hosts map[string]string
		stats SessionStats
	}
	grow := func(workers int) outcome {
		sess, err := f.buildBase(t).Open("GreZ-GreC", WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		f.growSession(t, sess)
		if err := sess.Resolve(); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Result()
		if err != nil {
			t.Fatal(err)
		}
		hosts := map[string]string{}
		for _, z := range sess.ZoneIDs() {
			h, err := sess.ZoneHost(z)
			if err != nil {
				t.Fatal(err)
			}
			hosts[z] = h
		}
		return outcome{res: res, hosts: hosts, stats: sess.Stats()}
	}
	static := func(workers int) outcome {
		sess, err := f.buildStatic(t).Open("GreZ-GreC", WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Result()
		if err != nil {
			t.Fatal(err)
		}
		hosts := map[string]string{}
		for _, z := range sess.ZoneIDs() {
			h, err := sess.ZoneHost(z)
			if err != nil {
				t.Fatal(err)
			}
			hosts[z] = h
		}
		return outcome{res: res, hosts: hosts, stats: sess.Stats()}
	}

	base := grow(1)
	for _, workers := range []int{1, 4} {
		g, s := grow(workers), static(workers)
		// Grown ≡ static: the solved assignment, per-client delays and
		// aggregate quality coincide exactly (GreZ-GreC is deterministic,
		// and the grown problem is the static problem).
		if !reflect.DeepEqual(g.res.ZoneServer, s.res.ZoneServer) {
			t.Fatalf("workers=%d: zone hosting: grown %v, static %v", workers, g.res.ZoneServer, s.res.ZoneServer)
		}
		if !reflect.DeepEqual(g.res.ClientContact, s.res.ClientContact) {
			t.Fatalf("workers=%d: contacts diverge between grown and static session", workers)
		}
		if !reflect.DeepEqual(g.res.Delays, s.res.Delays) {
			t.Fatalf("workers=%d: delays diverge between grown and static session", workers)
		}
		if !reflect.DeepEqual(g.res.ClientIDs, s.res.ClientIDs) {
			t.Fatalf("workers=%d: client ID order diverges", workers)
		}
		if g.res.PQoS != s.res.PQoS || g.res.WithQoS != s.res.WithQoS || g.res.Utilization != s.res.Utilization {
			t.Fatalf("workers=%d: metrics diverge: grown (%v %d %v) static (%v %d %v)", workers,
				g.res.PQoS, g.res.WithQoS, g.res.Utilization, s.res.PQoS, s.res.WithQoS, s.res.Utilization)
		}
		if !reflect.DeepEqual(g.hosts, s.hosts) {
			t.Fatalf("workers=%d: ID-keyed zone hosting diverges", workers)
		}
		// Worker-count invariance of the grown trajectory, counters
		// included.
		if !reflect.DeepEqual(g.res, base.res) || g.stats != base.stats {
			t.Fatalf("workers=%d: grown trajectory differs from workers=1 (stats %+v vs %+v)", workers, g.stats, base.stats)
		}
	}
}

// TestSessionDrainServer covers the drain protocol on the public surface:
// after DrainServer the server holds zero zones and zero contacts, no
// full re-solve fired while the drift guard was quiet, RemoveServer
// succeeds, and the session keeps operating on the renumbered topology.
func TestSessionDrainServer(t *testing.T) {
	for _, workers := range []int{1, 4} {
		f := defaultTopoFixture()
		sess, err := f.buildBase(t).Open("GreZ-GreC", WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		const victim = "s01"
		solvesBefore := sess.Stats().FullSolves
		if err := sess.DrainServer(victim); err != nil {
			t.Fatal(err)
		}
		if got := sess.Stats().FullSolves; got != solvesBefore {
			t.Fatalf("workers=%d: drain triggered a full re-solve (%d → %d) with a quiet guard", workers, solvesBefore, got)
		}
		var drainedRow *ServerStatus
		servers := sess.Servers()
		for i := range servers {
			if servers[i].ID == victim {
				drainedRow = &servers[i]
			}
		}
		if drainedRow == nil || !drainedRow.Draining {
			t.Fatalf("workers=%d: Servers() does not report %s draining: %+v", workers, victim, sess.Servers())
		}
		// Tolerance, not equality: incremental load maintenance leaves
		// float dust on an emptied server.
		if drainedRow.Zones != 0 || drainedRow.LoadMbps > 1e-9 || drainedRow.LoadMbps < -1e-9 {
			t.Fatalf("workers=%d: drained server still loaded: %+v", workers, *drainedRow)
		}
		if drainedRow.CapacityMbps != 120 {
			t.Fatalf("workers=%d: nominal capacity = %v, want 120", workers, drainedRow.CapacityMbps)
		}
		for _, id := range sess.ClientIDs() {
			cl, err := sess.Client(id)
			if err != nil {
				t.Fatal(err)
			}
			if cl.Contact == victim || cl.Target == victim {
				t.Fatalf("workers=%d: client %s still touches drained server (%+v)", workers, id, cl)
			}
		}

		// Uncordon round-trips; drain again and remove.
		if err := sess.UncordonServer(victim); err != nil {
			t.Fatal(err)
		}
		if err := sess.DrainServer(victim); err != nil {
			t.Fatal(err)
		}
		if err := sess.RemoveServer(victim); err != nil {
			t.Fatal(err)
		}
		if sess.NumServers() != f.baseServers-1 {
			t.Fatalf("workers=%d: %d servers after removal, want %d", workers, sess.NumServers(), f.baseServers-1)
		}
		if _, err := sess.Client("c000"); err != nil {
			t.Fatal(err)
		}
		// The renumbered topology still admits clients (rows are one
		// entry shorter now).
		spec := ClientSpec{Zone: f.zoneID(0), BandwidthMbps: 1, RTTs: map[string]float64{}}
		for _, sid := range sess.ServerIDs() {
			spec.RTTs[sid] = 42
		}
		if err := sess.Join("late", spec); err != nil {
			t.Fatalf("workers=%d: join after removal: %v", workers, err)
		}
		if res, err := sess.Result(); err != nil || res.Clients != f.baseClients+1 {
			t.Fatalf("workers=%d: result after topology churn: %v (err %v)", workers, res, err)
		}
	}
}

// TestSessionTopologyErrors covers the sentinel surface of the new
// methods with errors.Is.
func TestSessionTopologyErrors(t *testing.T) {
	f := defaultTopoFixture()
	sess, err := f.buildBase(t).Open("GreZ-GreC")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RemoveServer("s00"); !errors.Is(err, ErrServerNotEmpty) {
		t.Fatalf("RemoveServer(loaded) = %v, want ErrServerNotEmpty", err)
	}
	if err := sess.RemoveServer("nope"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("RemoveServer(unknown) = %v, want ErrUnknownServer", err)
	}
	if err := sess.DrainServer("nope"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("DrainServer(unknown) = %v, want ErrUnknownServer", err)
	}
	if err := sess.RetireZone("z00"); !errors.Is(err, ErrZoneNotEmpty) {
		t.Fatalf("RetireZone(populated) = %v, want ErrZoneNotEmpty", err)
	}
	if err := sess.RetireZone("atlantis"); !errors.Is(err, ErrUnknownZone) {
		t.Fatalf("RetireZone(unknown) = %v, want ErrUnknownZone", err)
	}
	if err := sess.AddZone("z-pinned", ZoneSpec{Host: "nope"}); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("AddZone(unknown host) = %v, want ErrUnknownServer", err)
	}
	if err := sess.AddServer("s00", ServerSpec{CapacityMbps: 1, RTTs: map[string]float64{}}); err == nil {
		t.Fatal("duplicate AddServer succeeded")
	}
	if err := sess.AddServer("sX", ServerSpec{CapacityMbps: 1, RTTs: map[string]float64{"s00": 10}}); err == nil {
		t.Fatal("AddServer with uncovered server RTTs succeeded")
	}
	if err := sess.UpdateServerDelays("nope", map[string]float64{"c000": 5}); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("UpdateServerDelays(unknown server) = %v, want ErrUnknownServer", err)
	}
	if err := sess.UpdateServerDelays("s00", map[string]float64{"ghost": 5}); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("UpdateServerDelays(unknown client) = %v, want ErrUnknownClient", err)
	}
	// Draining every server but one leaves the last one undrainable.
	for i := 1; i < f.baseServers; i++ {
		if err := sess.DrainServer(f.serverID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.DrainServer("s00"); !errors.Is(err, ErrLastServer) {
		t.Fatalf("DrainServer(last available) = %v, want ErrLastServer", err)
	}
}

// TestJoinBatchAtomic proves batch validation happens before any
// admission: one bad entry rejects the whole batch.
func TestJoinBatchAtomic(t *testing.T) {
	f := defaultTopoFixture()
	sess, err := f.buildBase(t).Open("GreZ-GreC")
	if err != nil {
		t.Fatal(err)
	}
	before := sess.NumClients()
	joins := []ClientJoin{
		{ID: "ok1", Spec: f.clientSpec(100, f.baseServers, f.baseZones)},
		{ID: "bad", Spec: ClientSpec{Zone: "atlantis", BandwidthMbps: 1, RTTs: map[string]float64{}}},
	}
	if err := sess.JoinBatch(joins); !errors.Is(err, ErrUnknownZone) {
		t.Fatalf("JoinBatch with bad zone = %v, want ErrUnknownZone", err)
	}
	if sess.NumClients() != before {
		t.Fatalf("failed batch admitted clients: %d → %d", before, sess.NumClients())
	}
	if _, err := sess.Client("ok1"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("client from failed batch resolves: %v", err)
	}
	// A clean batch lands all of them as one event.
	joins = joins[:1]
	for x := 101; x < 105; x++ {
		joins = append(joins, ClientJoin{ID: f.clientID(x), Spec: f.clientSpec(x, f.baseServers, f.baseZones)})
	}
	if err := sess.JoinBatch(joins); err != nil {
		t.Fatal(err)
	}
	if got := sess.NumClients(); got != before+5 {
		t.Fatalf("population after batch = %d, want %d", got, before+5)
	}
	if got := sess.Stats().Joins; got != 5 {
		t.Fatalf("Stats().Joins = %d, want 5", got)
	}
}

// TestUnmeasuredServerBecomesAttractive adds a server without client
// measurements (every column entry starts at UnmeasuredRTTMs), then
// streams a column of real measurements in and watches clients adopt it.
func TestUnmeasuredServerBecomesAttractive(t *testing.T) {
	f := defaultTopoFixture()
	sess, err := f.buildBase(t).Open("GreZ-GreC")
	if err != nil {
		t.Fatal(err)
	}
	rtts := make(map[string]float64, f.baseServers)
	for l := 0; l < f.baseServers; l++ {
		rtts[f.serverID(l)] = 20
	}
	if err := sess.AddServer("fresh", ServerSpec{CapacityMbps: 1000, RTTs: rtts}); err != nil {
		t.Fatal(err)
	}
	// Unmeasured: nothing should sit on the fresh server.
	for _, id := range sess.ClientIDs() {
		cl, err := sess.Client(id)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Contact == "fresh" {
			t.Fatalf("client %s adopted an unmeasured server", id)
		}
	}
	// Measure: every client is 1 ms away; after a re-solve the fresh
	// server must host zones (it dominates every delay row).
	col := make(map[string]float64, sess.NumClients())
	for _, id := range sess.ClientIDs() {
		col[id] = 1
	}
	if err := sess.UpdateServerDelays("fresh", col); err != nil {
		t.Fatal(err)
	}
	if err := sess.Resolve(); err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for _, st := range sess.Servers() {
		if st.ID == "fresh" {
			hosted = st.Zones
		}
	}
	if hosted == 0 {
		t.Fatal("measured 1ms server hosts no zones after re-solve")
	}
}
