package dvecap

import (
	"dvecap/internal/core"
)

// Result is the outcome of one assignment run.
type Result struct {
	// Algorithm is the algorithm that produced the assignment.
	Algorithm string
	// PQoS is the fraction of clients within the delay bound.
	PQoS float64
	// Utilization is consumed bandwidth over total capacity.
	Utilization float64
	// WithQoS is the absolute count of clients within the bound.
	WithQoS int
	// Clients is the total client count.
	Clients int
	// Delays holds each client's effective delay to its target (ms).
	Delays []float64
	// ZoneServer and ClientContact expose the raw assignment: the server
	// index hosting each zone, and each client's contact server index.
	ZoneServer    []int
	ClientContact []int
	// ClientIDs names the client behind each index of Delays and
	// ClientContact when the run came from a Cluster (nil on the Scenario
	// paths, whose clients are anonymous). Zone and server indices follow
	// the cluster's ZoneIDs and ServerIDs order.
	ClientIDs []string
}

// newResult assembles the Result shared by every solve surface — Assign,
// AssignWithEstimationError, Cluster.Solve, and the session Result
// methods — from an evaluation against truth.
func newResult(algorithm string, truth *core.Problem, a *core.Assignment, m core.Metrics, ids []string) *Result {
	return &Result{
		Algorithm:     algorithm,
		PQoS:          m.PQoS,
		Utilization:   m.Utilization,
		WithQoS:       m.WithQoS,
		Clients:       truth.NumClients(),
		Delays:        m.Delays,
		ZoneServer:    a.ZoneServer,
		ClientContact: a.ClientContact,
		ClientIDs:     ids,
	}
}
