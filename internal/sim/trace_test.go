package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	in := []Sample{
		{Time: 0, Event: "initial", Clients: 600, PQoS: 0.95, Utilization: 0.24},
		{Time: 60, Event: "pre-reassign", Clients: 690, PQoS: 0.91, Utilization: 0.31},
		{Time: 60, Event: "post-reassign", Clients: 690, PQoS: 0.98, Utilization: 0.33},
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range in {
		if got[i].Event != in[i].Event || got[i].Clients != in[i].Clients {
			t.Fatalf("row %d changed: %+v vs %+v", i, got[i], in[i])
		}
		if got[i].Time != in[i].Time || got[i].PQoS != in[i].PQoS {
			t.Fatalf("row %d numeric drift", i)
		}
	}
}

func TestTraceCSVHeaderPresent(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time_s,event,clients,pqos,utilization") {
		t.Fatalf("header missing: %q", buf.String())
	}
}

func TestReadTraceCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"time_s,event,clients,pqos,utilization\nbad,row\n",
		"time_s,event,clients,pqos,utilization\nx,init,1,0.5,0.3\n",
		"time_s,event,clients,pqos,utilization\n1.0,init,x,0.5,0.3\n",
	}
	for i, in := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDriverTraceExport(t *testing.T) {
	w := buildTestWorld(t, 50)
	e := NewEngine()
	d, err := NewDriver(e, w, coreAlgo(), coreOpts(), defaultChurn(), rngFor(51))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	e.Run(150)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, d.Samples()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d.Samples()) {
		t.Fatalf("trace lost samples: %d vs %d", len(got), len(d.Samples()))
	}
}
