package director

// Autoscaling control plane (DESIGN.md §14): the director hosts an
// autoscale.Reconciler whose actuator drives the live-topology verbs —
// scale-up admits the lowest-index warm spare via UncordonServer (the
// planner's flow-back scan pulls load onto it immediately, O(affected)),
// scale-down drains the least-loaded active server back into the pool,
// and retirement removes a long-drained tail server. Every verb runs
// through the journaled mutators, so an autoscaled trajectory recovers
// bit-identically like any other.

import (
	"fmt"
	"strconv"
	"strings"

	"dvecap/internal/autoscale"
)

// dirActuator adapts the director to autoscale.Actuator. Targets are
// "s<i>" dense server indices; every choice is a deterministic function
// of planner state (lowest index, least-loaded with lowest-index ties).
type dirActuator struct{ d *Director }

func (a dirActuator) Observe() autoscale.Observation {
	d := a.d
	d.mu.RLock()
	defer d.mu.RUnlock()
	pl := d.planner()
	st := pl.Stats()
	active, spares := 0, 0
	for i := range d.cfg.ServerNodes {
		if pl.Draining(i) {
			spares++
		} else {
			active++
		}
	}
	return autoscale.Observation{
		Clients:       d.binding.Len(),
		Utilization:   pl.Utilization(),
		UtilSpread:    st.LastUtilSpread,
		PQoS:          pl.PQoS(),
		DriftPQoS:     st.LastDriftPQoS,
		ActiveServers: active,
		SpareServers:  spares,
	}
}

// ScaleUp admits the lowest-index drained server.
func (a dirActuator) ScaleUp() (string, error) {
	d := a.d
	d.mu.RLock()
	victim := -1
	for i := range d.cfg.ServerNodes {
		if d.planner().Draining(i) {
			victim = i
			break
		}
	}
	d.mu.RUnlock()
	if victim < 0 {
		return "", fmt.Errorf("director: scale-up with no drained server")
	}
	if _, err := d.UncordonServer(victim); err != nil {
		return "", err
	}
	return "s" + strconv.Itoa(victim), nil
}

// ScaleDown drains the least-loaded active server, ties to the lowest
// index.
func (a dirActuator) ScaleDown() (string, error) {
	d := a.d
	d.mu.RLock()
	victim, best := -1, 0.0
	for i := range d.cfg.ServerNodes {
		if d.planner().Draining(i) {
			continue
		}
		if l := d.planner().ServerLoad(i); victim < 0 || l < best {
			victim, best = i, l
		}
	}
	d.mu.RUnlock()
	if victim < 0 {
		return "", fmt.Errorf("director: scale-down with no active server")
	}
	if _, err := d.DrainServer(victim); err != nil {
		return "", err
	}
	return "s" + strconv.Itoa(victim), nil
}

// Retire removes a long-drained server — but only the fleet's TAIL
// index. RemoveServer renumbers (the last server takes the vacated
// index), which would silently re-point every higher "s<i>" target the
// reconciler still tracks; removing the tail moves nothing. A non-tail
// target stays in the warm pool instead (ErrRetireUnsupported).
func (a dirActuator) Retire(target string) error {
	d := a.d
	i, err := strconv.Atoi(strings.TrimPrefix(target, "s"))
	if err != nil {
		return fmt.Errorf("director: retire target %q: %w", target, err)
	}
	d.mu.RLock()
	tail := i == len(d.cfg.ServerNodes)-1
	draining := i >= 0 && i < len(d.cfg.ServerNodes) && d.planner().Draining(i)
	d.mu.RUnlock()
	if !tail || !draining {
		return autoscale.ErrRetireUnsupported
	}
	return d.RemoveServer(i)
}

// EnableAutoscale attaches an autoscaling reconciler to the director.
// The reconciler shares the director's telemetry registry (the
// dvecap_autoscale_* series) and drives the journaled topology verbs;
// call it once, then run Autoscale().RunLoop (or tick it by hand through
// POST /v1/autoscale/tick). Fails if already enabled.
func (d *Director) EnableAutoscale(cfg autoscale.Config) error {
	d.mu.Lock()
	if d.autoRec != nil {
		d.mu.Unlock()
		return fmt.Errorf("director: autoscaling already enabled")
	}
	d.mu.Unlock()
	// New observes the fleet once to seed gauges — through dirActuator,
	// which takes d.mu itself, so the director lock must be free here.
	rec, err := autoscale.New(cfg, dirActuator{d}, d.tele)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.autoRec != nil {
		return fmt.Errorf("director: autoscaling already enabled")
	}
	d.autoRec = rec
	return nil
}

// Autoscale returns the reconciler, or nil when autoscaling is not
// enabled.
func (d *Director) Autoscale() *autoscale.Reconciler {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.autoRec
}

// AutoscaleStatus is the GET /v1/autoscale view: the live policy, pause
// state, hysteresis position and the fired-decision log.
type AutoscaleStatus struct {
	Enabled    bool                 `json:"enabled"`
	Paused     bool                 `json:"paused"`
	Ticks      int                  `json:"ticks"`
	HighStreak int                  `json:"high_streak"`
	LowStreak  int                  `json:"low_streak"`
	Config     autoscale.Config     `json:"config"`
	Decisions  []autoscale.Decision `json:"decisions"`
}

// AutoscaleStatus snapshots the reconciler (zero value when disabled).
func (d *Director) AutoscaleStatus() AutoscaleStatus {
	rec := d.Autoscale()
	if rec == nil {
		return AutoscaleStatus{}
	}
	hi, lo := rec.Streaks()
	return AutoscaleStatus{
		Enabled:    true,
		Paused:     rec.Paused(),
		Ticks:      rec.Ticks(),
		HighStreak: hi,
		LowStreak:  lo,
		Config:     rec.Config(),
		Decisions:  rec.Decisions(),
	}
}
