package sim

import (
	"math"
	"reflect"
	"testing"

	"dvecap/internal/autoscale"
	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/topology"
	"dvecap/internal/xrand"
)

func TestArrivalTraceValidate(t *testing.T) {
	good := ArrivalTrace{BaseRate: 1, DiurnalAmplitude: 0.5, DiurnalPeriodSec: 3600,
		Flashes: []Flash{{StartSec: 100, DurationSec: 60, Multiplier: 3}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ArrivalTrace{
		{BaseRate: 0},
		{BaseRate: 1, DiurnalAmplitude: -0.1},
		{BaseRate: 1, DiurnalAmplitude: 1},
		{BaseRate: 1, DiurnalAmplitude: 0.5}, // tide without a period
		{BaseRate: 1, Flashes: []Flash{{StartSec: -1, DurationSec: 1, Multiplier: 2}}},
		{BaseRate: 1, Flashes: []Flash{{StartSec: 0, DurationSec: 0, Multiplier: 2}}},
		{BaseRate: 1, Flashes: []Flash{{StartSec: 0, DurationSec: 1, Multiplier: 0}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted: %+v", i, tr)
		}
	}
}

func TestArrivalTraceRate(t *testing.T) {
	tr := ArrivalTrace{BaseRate: 10, DiurnalAmplitude: 0.5, DiurnalPeriodSec: 1000,
		Flashes: []Flash{{StartSec: 100, DurationSec: 50, Multiplier: 4}}}
	// The tide opens at the trough and peaks half a period in.
	if got := tr.Rate(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Rate(0) = %v, want 5 (trough)", got)
	}
	if got := tr.Rate(500); math.Abs(got-15) > 1e-9 {
		t.Fatalf("Rate(500) = %v, want 15 (peak)", got)
	}
	// Inside the flash the tide is multiplied; outside it is not.
	base := tr.Rate(99)
	if got := tr.Rate(100); math.Abs(got-4*tr.BaseRate*(1+0.5*math.Sin(2*math.Pi*0.1-math.Pi/2))) > 1e-9 {
		t.Fatalf("Rate(100) = %v, want 4x the tide", got)
	}
	if got := tr.Rate(150); got > 2*base {
		t.Fatalf("Rate(150) = %v, flash did not end", got)
	}
	// MaxRate dominates Rate everywhere (the thinning envelope invariant).
	max := tr.MaxRate()
	for ts := 0.0; ts < 2000; ts += 7 {
		if r := tr.Rate(ts); r > max+1e-9 {
			t.Fatalf("Rate(%v) = %v exceeds MaxRate %v", ts, r, max)
		}
	}
	// Sub-1 multipliers (a dip) must not inflate the envelope.
	dip := ArrivalTrace{BaseRate: 10, Flashes: []Flash{{StartSec: 0, DurationSec: 10, Multiplier: 0.5}}}
	if got := dip.MaxRate(); got != 10 {
		t.Fatalf("MaxRate with a dip = %v, want 10", got)
	}
}

func TestAutoscaleConfigValidate(t *testing.T) {
	cfg := repairChurn()
	cfg.Autoscale = &AutoscaleConfig{SpareServers: 2, EverySec: 60}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Autoscale without repair mode.
	noRepair := cfg
	noRepair.Repair = false
	if err := noRepair.Validate(); err == nil {
		t.Fatal("autoscale accepted without repair mode")
	}
	// Autoscale with the rolling-deploy schedule (both own the drain set).
	deploy := cfg
	deploy.RollingDeployEverySec = 300
	deploy.DrainDowntimeSec = 60
	if err := deploy.Validate(); err == nil {
		t.Fatal("autoscale accepted alongside a rolling deploy")
	}
	// Arrival trace is exclusive with a constant join rate.
	both := cfg
	both.Arrivals = &ArrivalTrace{BaseRate: 1}
	if err := both.Validate(); err == nil {
		t.Fatal("arrival trace accepted alongside JoinRate")
	}
	both.JoinRate = 0
	if err := both.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bad nested configs surface.
	badEvery := cfg
	badEvery.Autoscale = &AutoscaleConfig{SpareServers: 2, EverySec: 0}
	if err := badEvery.Validate(); err == nil {
		t.Fatal("EverySec = 0 accepted")
	}
	badSpares := cfg
	badSpares.Autoscale = &AutoscaleConfig{SpareServers: -1, EverySec: 60}
	if err := badSpares.Validate(); err == nil {
		t.Fatal("negative spares accepted")
	}
	badPolicy := cfg
	badPolicy.Autoscale = &AutoscaleConfig{SpareServers: 2, EverySec: 60,
		Policy: autoscale.Config{UtilHigh: 2}}
	if err := badPolicy.Validate(); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

// buildAutoscaleWorld builds a world provisioned for a full diurnal swing:
// the whole 8-server fleet covers the flash-crowd peak under the high
// watermark, while the trough needs only a small active prefix.
func buildAutoscaleWorld(t *testing.T, seed uint64) *dve.World {
	t.Helper()
	hp := topology.DefaultHier()
	hp.ASCount = 4
	hp.NodesPerAS = 10
	g, err := topology.Hier(xrand.New(seed), hp)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dve.DefaultConfig()
	cfg.Servers = 8
	cfg.Zones = 16
	cfg.Clients = 40
	cfg.TotalCapacityMbps = 220
	w, err := dve.BuildWorld(xrand.New(seed+1), cfg, g, dm)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// diurnalFlashTrace is the acceptance trace: two diurnal periods with a
// flash crowd landing on the second peak.
func diurnalFlashTrace() *ArrivalTrace {
	return &ArrivalTrace{
		BaseRate:         0.5,
		DiurnalAmplitude: 0.8,
		DiurnalPeriodSec: 3000,
		Flashes:          []Flash{{StartSec: 4200, DurationSec: 300, Multiplier: 1.4}},
	}
}

// runAutoscale drives the acceptance trace for 6000 virtual seconds and
// returns the driver for scoring.
func runAutoscale(t *testing.T, workers int, oracle bool, pol autoscale.Config) *Driver {
	t.Helper()
	w := buildAutoscaleWorld(t, 90)
	e := NewEngine()
	opt := coreOpts()
	opt.Workers = workers
	cfg := repairChurn()
	cfg.JoinRate = 0
	cfg.Arrivals = diurnalFlashTrace()
	cfg.MeanSessionSec = 300
	cfg.MoveRatePerClient = 0.002
	cfg.SampleEverySec = 30
	cfg.Autoscale = &AutoscaleConfig{
		Policy:       pol,
		SpareServers: 5,
		EverySec:     60,
		Oracle:       oracle,
	}
	d, err := NewDriver(e, w, core.GreZGreC, opt, cfg, xrand.New(91))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	e.Run(6000)
	for _, err := range d.Errors() {
		t.Fatalf("driver error (oracle=%v workers=%d): %v", oracle, workers, err)
	}
	return d
}

// acceptancePolicy is the reconciler configuration scored against the
// oracle on the diurnal + flash-crowd trace.
func acceptancePolicy() autoscale.Config {
	return autoscale.Config{
		UtilHigh:          0.75,
		UtilLow:           0.45,
		HighWindowTicks:   2,
		LowWindowTicks:    2,
		UpCooldownTicks:   1,
		DownCooldownTicks: 1,
	}
}

// timeAvgPQoS integrates pQoS over the sample sequence (piecewise-constant
// between samples), so dips during flash crowds are weighted by how long
// they lasted, not by how many samples landed in them.
func timeAvgPQoS(samples []Sample) float64 {
	if len(samples) < 2 {
		if len(samples) == 1 {
			return samples[0].PQoS
		}
		return 0
	}
	area, prev := 0.0, samples[0]
	for _, s := range samples[1:] {
		area += prev.PQoS * (s.Time - prev.Time)
		prev = s
	}
	return area / (prev.Time - samples[0].Time)
}

// TestAutoscaleTracksOracle is the ISSUE's acceptance bar: on the diurnal
// + flash-crowd trace, the hysteresis reconciler must hold time-averaged
// pQoS within epsilon of the clairvoyant oracle provisioner while
// spending at most 1.2x its server-hours.
func TestAutoscaleTracksOracle(t *testing.T) {
	oracle := runAutoscale(t, 1, true, acceptancePolicy())
	rec := runAutoscale(t, 1, false, acceptancePolicy())

	oHours, rHours := oracle.ServerHours(), rec.ServerHours()
	oPQoS, rPQoS := timeAvgPQoS(oracle.Samples()), timeAvgPQoS(rec.Samples())
	t.Logf("oracle: %.2f server-hours, pQoS %.4f, %d moves", oHours, oPQoS, oracle.OracleMoves())
	t.Logf("reconciler: %.2f server-hours, pQoS %.4f, %d decisions", rHours, rPQoS, len(rec.AutoscaleDecisions()))

	if oHours <= 0 {
		t.Fatal("oracle accumulated no server-hours")
	}
	if rHours > 1.2*oHours {
		t.Fatalf("reconciler spent %.2f server-hours, budget 1.2x oracle = %.2f", rHours, 1.2*oHours)
	}
	const eps = 0.05
	if rPQoS < oPQoS-eps {
		t.Fatalf("reconciler pQoS %.4f more than eps=%.2f below oracle %.4f", rPQoS, eps, oPQoS)
	}
	// The controller actually worked: the fleet breathed with the tide.
	ds := rec.AutoscaleDecisions()
	ups, downs := 0, 0
	for _, d := range ds {
		switch d.Action {
		case autoscale.ActionScaleUp:
			ups++
		case autoscale.ActionScaleDown:
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("fleet never breathed: %d ups, %d downs", ups, downs)
	}
}

// TestAutoscaleWorkersDeterministic: the reconciler's decision sequence
// and the run's samples are bit-identical across worker counts — the end
// of the DESIGN.md §14 determinism chain.
func TestAutoscaleWorkersDeterministic(t *testing.T) {
	seqD := runAutoscale(t, 1, false, acceptancePolicy())
	seq, seqDecisions := seqD.Samples(), seqD.AutoscaleDecisions()
	parD := runAutoscale(t, 4, false, acceptancePolicy())
	par, parDecisions := parD.Samples(), parD.AutoscaleDecisions()
	if !reflect.DeepEqual(seqDecisions, parDecisions) {
		t.Fatalf("decision logs diverge across workers:\n1: %+v\n4: %+v", seqDecisions, parDecisions)
	}
	if len(seq) != len(par) {
		t.Fatalf("sample counts diverge: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("sample %d differs across workers: %+v vs %+v", i, seq[i], par[i])
		}
	}
	if seqD.ServerHours() != parD.ServerHours() {
		t.Fatalf("server-hours diverge: %v vs %v", seqD.ServerHours(), parD.ServerHours())
	}
}

// flappingTrace is a square wave: repeated short flash crowds over a low
// base rate, the classic thrash-inducing load for a threshold controller.
func flappingTrace() *ArrivalTrace {
	fl := make([]Flash, 0, 8)
	for start := 300.0; start < 4800; start += 600 {
		fl = append(fl, Flash{StartSec: start, DurationSec: 300, Multiplier: 12})
	}
	return &ArrivalTrace{BaseRate: 0.15, Flashes: fl}
}

// runFlapping drives the square-wave trace through a given policy and
// returns the fired-decision log.
func runFlapping(t *testing.T, workers int, pol autoscale.Config) []autoscale.Decision {
	t.Helper()
	w := buildAutoscaleWorld(t, 70)
	e := NewEngine()
	opt := coreOpts()
	opt.Workers = workers
	cfg := repairChurn()
	cfg.JoinRate = 0
	cfg.Arrivals = flappingTrace()
	cfg.MeanSessionSec = 150
	cfg.MoveRatePerClient = 0.002
	cfg.Autoscale = &AutoscaleConfig{Policy: pol, SpareServers: 5, EverySec: 30}
	d, err := NewDriver(e, w, core.GreZGreC, opt, cfg, xrand.New(71))
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	e.Run(4800)
	for _, err := range d.Errors() {
		t.Fatalf("driver error: %v", err)
	}
	return d.AutoscaleDecisions()
}

// TestAutoscaleHysteresisDampsFlapping is the churn-budget satellite: on a
// flapping load the naive threshold controller (windows of 1, no
// cooldowns) thrashes, while the tuned hysteresis config keeps topology
// churn under a fixed budget — bit-identically across worker counts.
func TestAutoscaleHysteresisDampsFlapping(t *testing.T) {
	naive := autoscale.Config{
		UtilHigh: 0.75, UtilLow: 0.35,
		HighWindowTicks: 1, LowWindowTicks: 1,
		UpCooldownTicks: -1, DownCooldownTicks: -1,
	}
	tuned := autoscale.Config{
		UtilHigh: 0.75, UtilLow: 0.35,
		HighWindowTicks: 3, LowWindowTicks: 8,
		UpCooldownTicks: 2, DownCooldownTicks: 10,
	}
	// 4800 virtual seconds = 1h20m: the budget is 18 topology events/hour.
	const churnBudget = 24

	naiveDs := runFlapping(t, 1, naive)
	tunedDs := runFlapping(t, 1, tuned)
	t.Logf("naive: %d decisions; tuned: %d decisions (budget %d)", len(naiveDs), len(tunedDs), churnBudget)

	if len(naiveDs) <= churnBudget {
		t.Fatalf("naive controller did not thrash: %d decisions, budget %d — the trace is too gentle to prove damping", len(naiveDs), churnBudget)
	}
	if len(tunedDs) > churnBudget {
		t.Fatalf("tuned controller blew the churn budget: %d decisions > %d", len(tunedDs), churnBudget)
	}
	if len(tunedDs) >= len(naiveDs) {
		t.Fatalf("hysteresis did not damp churn: tuned %d >= naive %d", len(tunedDs), len(naiveDs))
	}

	// Both controllers are deterministic across worker counts.
	for _, pol := range []autoscale.Config{naive, tuned} {
		seq := runFlapping(t, 1, pol)
		par := runFlapping(t, 4, pol)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("decision logs diverge across workers:\n1: %+v\n4: %+v", seq, par)
		}
	}
}

// TestAutoscaleSpareValidation: the pool cannot swallow the whole fleet.
func TestAutoscaleSpareValidation(t *testing.T) {
	w := buildTestWorld(t, 10)
	cfg := repairChurn()
	cfg.Autoscale = &AutoscaleConfig{SpareServers: w.Cfg.Servers, EverySec: 60}
	if _, err := NewDriver(NewEngine(), w, core.GreZGreC, coreOpts(), cfg, xrand.New(11)); err == nil {
		t.Fatal("SpareServers = fleet size accepted")
	}
}
