package sim

import (
	"fmt"
	"io"

	"dvecap/internal/autoscale"
	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/repair"
	"dvecap/internal/xrand"
	"dvecap/telemetry"
)

// ChurnConfig parameterises the churn driver's stochastic processes.
type ChurnConfig struct {
	// JoinRate is the Poisson client arrival rate, clients/second.
	// Exclusive with Arrivals.
	JoinRate float64
	// Arrivals, when set, replaces the constant JoinRate with a
	// time-varying trace — diurnal tide plus flash crowds (autoscale.go).
	// JoinRate must be 0.
	Arrivals *ArrivalTrace
	// Autoscale, when set, arms the capacity control loop: the last
	// SpareServers world servers start drained as a warm pool and a
	// reconciler (or the clairvoyant oracle) drives drain/uncordon on the
	// planner every EverySec. Requires Repair mode; exclusive with the
	// rolling-deploy schedule (both own the drained set).
	Autoscale *AutoscaleConfig
	// MeanSessionSec is the mean client session length; each client leaves
	// at total rate population/MeanSessionSec.
	MeanSessionSec float64
	// MoveRatePerClient is each client's zone-migration rate, moves/second.
	MoveRatePerClient float64
	// ReassignEverySec re-runs the assignment algorithm at this period.
	ReassignEverySec float64
	// HandoffFreezeSec models the cost of migrating a zone's authoritative
	// state between servers: for this long after a reassignment moves a
	// zone, that zone's clients are counted without QoS (the zone is
	// frozen mid-handoff). 0 disables the model, making re-execution free
	// as the paper implicitly assumes.
	HandoffFreezeSec float64
	// SampleEverySec adds periodic "tick" quality samples between
	// reassignments, so sample means are genuine time averages (without
	// it, samples cluster at reassignment instants). 0 disables ticks.
	SampleEverySec float64
	// StickyBonus, when > 0, replaces the algorithm's initial phase on
	// re-executions with core.StickyGreZ(current, StickyBonus): zones stay
	// on their server unless a move improves the IAP cost by more than the
	// bonus. Meaningful with HandoffFreezeSec; see DESIGN.md §5.
	StickyBonus float64
	// Repair switches the driver from periodic full re-solves to the
	// incremental churn-repair subsystem (DESIGN.md §7): every join, leave
	// and move is applied through a repair.Planner in O(affected), and the
	// ReassignEverySec tick becomes the fallback cadence — it samples
	// quality and runs a full two-phase re-solve only when pQoS has
	// drifted past the threshold since the last full solve. With
	// HandoffFreezeSec > 0, repair-mode zone freezes are applied at
	// sampling granularity (the driver notices planner-side rehostings
	// when it syncs for a sample).
	Repair bool
	// RepairDriftPQoS is the drift threshold the fallback tick checks: a
	// full re-solve runs once pQoS falls more than this far below the last
	// full solve's level. 0 means the default 0.02.
	RepairDriftPQoS float64
	// RollingDeployEverySec arms the capacity-churn schedule (repair mode
	// only): every period, the next server in round-robin order is DRAINED
	// through the planner's topology events — its capacity leaves the
	// fleet, hosted zones evacuate in O(affected), forwarding contacts
	// re-attach — and DrainDowntimeSec later it is uncordoned with its
	// capacity restored. One server is down at a time (a deploy slot is
	// skipped while the previous server is still down), which is exactly a
	// rolling deploy; experiments measure pQoS straight through it. 0
	// disables capacity churn.
	RollingDeployEverySec float64
	// DrainDowntimeSec is how long a drained server stays down before it
	// is uncordoned. Required (> 0, < RollingDeployEverySec) when
	// RollingDeployEverySec is set.
	DrainDowntimeSec float64
	// Telemetry, when set, is attached to the repair planner (repair mode)
	// and fed live dvecap_sim_* gauges — virtual time, population, pQoS,
	// utilization — refreshed at every quality sample. Observation only:
	// results are bit-identical with or without it.
	Telemetry *telemetry.Registry
	// MetricsLog, when set (with Telemetry), streams one Prometheus-text
	// snapshot of the registry per periodic tick, each preceded by a
	// "# tick t=<virtual seconds>" comment line — a scrape series over
	// virtual time for offline analysis.
	MetricsLog io.Writer
}

// repairDrift resolves the configured drift threshold.
func (c ChurnConfig) repairDrift() float64 {
	if c.RepairDriftPQoS > 0 {
		return c.RepairDriftPQoS
	}
	return 0.02
}

// Validate reports the first invalid rate.
func (c ChurnConfig) Validate() error {
	switch {
	case c.JoinRate < 0:
		return fmt.Errorf("sim: JoinRate = %v, want >= 0", c.JoinRate)
	case c.MeanSessionSec <= 0:
		return fmt.Errorf("sim: MeanSessionSec = %v, want > 0", c.MeanSessionSec)
	case c.MoveRatePerClient < 0:
		return fmt.Errorf("sim: MoveRatePerClient = %v, want >= 0", c.MoveRatePerClient)
	case c.ReassignEverySec <= 0:
		return fmt.Errorf("sim: ReassignEverySec = %v, want > 0", c.ReassignEverySec)
	case c.HandoffFreezeSec < 0:
		return fmt.Errorf("sim: HandoffFreezeSec = %v, want >= 0", c.HandoffFreezeSec)
	case c.SampleEverySec < 0:
		return fmt.Errorf("sim: SampleEverySec = %v, want >= 0", c.SampleEverySec)
	case c.StickyBonus < 0:
		return fmt.Errorf("sim: StickyBonus = %v, want >= 0", c.StickyBonus)
	case c.RepairDriftPQoS < 0:
		return fmt.Errorf("sim: RepairDriftPQoS = %v, want >= 0", c.RepairDriftPQoS)
	case c.RollingDeployEverySec < 0:
		return fmt.Errorf("sim: RollingDeployEverySec = %v, want >= 0", c.RollingDeployEverySec)
	}
	if c.RollingDeployEverySec > 0 {
		switch {
		case !c.Repair:
			return fmt.Errorf("sim: RollingDeployEverySec requires Repair mode (capacity churn runs through the planner's topology events)")
		case c.DrainDowntimeSec <= 0:
			return fmt.Errorf("sim: DrainDowntimeSec = %v, want > 0 with a rolling-deploy schedule", c.DrainDowntimeSec)
		case c.DrainDowntimeSec >= c.RollingDeployEverySec:
			return fmt.Errorf("sim: DrainDowntimeSec %v >= RollingDeployEverySec %v (server would never return before the next drain)",
				c.DrainDowntimeSec, c.RollingDeployEverySec)
		}
	}
	if c.Arrivals != nil {
		if c.JoinRate != 0 {
			return fmt.Errorf("sim: JoinRate = %v with an arrival trace, want 0 (the trace owns the arrival process)", c.JoinRate)
		}
		if err := c.Arrivals.Validate(); err != nil {
			return err
		}
	}
	if c.Autoscale != nil {
		switch {
		case !c.Repair:
			return fmt.Errorf("sim: Autoscale requires Repair mode (scaling runs through the planner's topology events)")
		case c.RollingDeployEverySec > 0:
			return fmt.Errorf("sim: Autoscale and RollingDeployEverySec are exclusive (both own the drained server set)")
		}
		if err := c.Autoscale.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Sample is one observation of system quality, taken around churn and
// reassignment events.
type Sample struct {
	Time        float64
	Event       string // "initial", "pre-reassign", "post-reassign"
	Clients     int
	PQoS        float64
	Utilization float64
}

// Driver animates a world with churn and periodic reassignment.
type Driver struct {
	eng   *Engine
	world *dve.World
	algo  core.TwoPhase
	opt   core.Options
	cfg   ChurnConfig
	rng   *xrand.RNG

	// current assignment state, kept index-aligned with the world.
	zoneServer []int
	contact    []int

	samples []Sample
	// contactMoves records, per re-execution, how many surviving clients
	// had to switch contact servers — the disruption cost of §3.4's
	// periodic reassignment.
	contactMoves []int
	// zoneMoves records, per re-execution, how many zones changed servers
	// (full-solve mode; repair mode counts through the planner).
	zoneMoves []int
	// zoneFrozenUntil[z] is the virtual time until which zone z is frozen
	// by an in-flight handoff (HandoffFreezeSec > 0 only).
	zoneFrozenUntil []float64
	errs            []error

	// Repair mode: the incremental planner and its world binding (the
	// world-indexed handle map plus bandwidth-model refreshes).
	planner *repair.Planner
	binding *repair.WorldBinding

	// Rolling-deploy state: the next server to drain (round-robin) and
	// the one currently down (-1 when the fleet is whole).
	deployNext int
	deployDown int

	// Autoscale state: the hysteresis reconciler (nil in oracle mode or
	// without autoscaling), the thinning envelope rate for the arrival
	// trace, the active-fleet time integral behind ServerHours, and the
	// oracle's verb count.
	autoRec     *autoscale.Reconciler
	arrivalMax  float64
	activeCount int
	serverSecs  float64
	lastActiveT float64
	oracleMoves int

	// Reused buffers: the problem snapshot (its k×m delay matrix dominates
	// per-cycle allocation), the algorithms' scratch workspace, and the
	// evaluation metrics. Rebuilt in place every reassignment and sample.
	prob  core.Problem
	ws    *core.Workspace
	evalM core.Metrics
}

// NewDriver computes an initial assignment and prepares the churn
// processes; call Start then eng.Run. opt flows into every solve and, in
// repair mode, into the planner — so opt.Workers shards the assignment
// scans (core.Options.Workers; DESIGN.md §8) without changing any result:
// runs are bit-identical for every worker count.
func NewDriver(eng *Engine, world *dve.World, algo core.TwoPhase, opt core.Options, cfg ChurnConfig, rng *xrand.RNG) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Driver{eng: eng, world: world, algo: algo, opt: opt, cfg: cfg, rng: rng, ws: core.NewWorkspace(), deployDown: -1}
	d.opt.Scratch = d.ws
	d.activeCount = world.Cfg.Servers
	spares := 0
	if cfg.Autoscale != nil {
		spares = cfg.Autoscale.SpareServers
		if spares >= world.Cfg.Servers {
			return nil, fmt.Errorf("sim: SpareServers = %d with only %d world servers (at least one must start active)", spares, world.Cfg.Servers)
		}
		// The initial solve must leave the pool empty: the spares — the
		// LAST SpareServers world servers — are cordoned for it, then
		// formally drained through the planner below (pure flag work, since
		// nothing was placed on them).
		mask := make([]bool, world.Cfg.Servers)
		for i := world.Cfg.Servers - spares; i < world.Cfg.Servers; i++ {
			mask[i] = true
		}
		d.opt.Cordoned = mask
	}
	if err := d.reassign("initial"); err != nil {
		return nil, err
	}
	// The cordon mask was for the initial solve only — the planner tracks
	// drains itself from here (a stale mask would pin the spares out of
	// every future full solve even after admission).
	d.opt.Cordoned = nil
	if cfg.Repair {
		// The initial full solve just ran on d.prob; the planner adopts it
		// and takes over per-event re-optimisation from here. The planner's
		// own per-event guard stays disarmed — in the driver, drift is
		// checked only at the ReassignEverySec fallback tick.
		pl, err := repair.NewWithAssignment(repair.Config{
			Algo:        algo,
			Opt:         d.opt,
			StickyBonus: cfg.StickyBonus,
		}, &d.prob, d.Assignment(), d.rng.Split())
		if err != nil {
			return nil, err
		}
		d.planner = pl
		if cfg.Telemetry != nil {
			pl.SetTelemetry(cfg.Telemetry)
		}
		d.binding = repair.BindWorld(pl, world)
		if cfg.HandoffFreezeSec > 0 && d.zoneFrozenUntil == nil {
			d.zoneFrozenUntil = make([]float64, world.Cfg.Zones)
		}
	}
	if cfg.Autoscale != nil {
		for i := world.Cfg.Servers - spares; i < world.Cfg.Servers; i++ {
			if err := d.planner.DrainServer(i); err != nil {
				return nil, fmt.Errorf("sim: pooling spare %d: %w", i, err)
			}
		}
		d.activeCount -= spares
		if !cfg.Autoscale.Oracle {
			rec, err := autoscale.New(cfg.Autoscale.Policy, driverActuator{d}, cfg.Telemetry)
			if err != nil {
				return nil, err
			}
			d.autoRec = rec
		}
	}
	return d, nil
}

// Start schedules the recurring processes on the engine.
func (d *Driver) Start() {
	switch {
	case d.cfg.Arrivals != nil:
		d.arrivalMax = d.cfg.Arrivals.MaxRate()
		d.eng.Schedule(d.rng.Exp(d.arrivalMax), d.joinTraceEvent)
	case d.cfg.JoinRate > 0:
		d.eng.Schedule(d.rng.Exp(d.cfg.JoinRate), d.joinEvent)
	}
	d.scheduleLeave()
	d.scheduleMove()
	d.eng.Schedule(d.cfg.ReassignEverySec, d.reassignEvent)
	if d.cfg.SampleEverySec > 0 {
		d.eng.Schedule(d.cfg.SampleEverySec, d.tickEvent)
	}
	if d.cfg.RollingDeployEverySec > 0 {
		d.eng.Schedule(d.cfg.RollingDeployEverySec, d.deployEvent)
	}
	if d.cfg.Autoscale != nil {
		d.eng.Schedule(d.cfg.Autoscale.EverySec, d.autoscaleEvent)
	}
}

// deployEvent drains the next server in the rolling deploy. A slot is
// skipped (deploy paused) while the previous server is still down —
// exactly one server is ever out of the fleet.
func (d *Driver) deployEvent() {
	if d.deployDown < 0 {
		victim := d.deployNext
		if err := d.planner.DrainServer(victim); err != nil {
			d.errs = append(d.errs, err)
		} else {
			d.deployDown = victim
			d.sample("drain")
			d.eng.Schedule(d.cfg.DrainDowntimeSec, d.restoreEvent)
		}
		d.deployNext = (victim + 1) % d.world.Cfg.Servers
	}
	d.eng.Schedule(d.cfg.RollingDeployEverySec, d.deployEvent)
}

// restoreEvent uncordons the server the deploy took down.
func (d *Driver) restoreEvent() {
	if d.deployDown < 0 {
		return
	}
	if err := d.planner.UncordonServer(d.deployDown); err != nil {
		d.errs = append(d.errs, err)
	}
	d.deployDown = -1
	d.sample("uncordon")
}

func (d *Driver) tickEvent() {
	d.sample("tick")
	if d.cfg.MetricsLog != nil && d.cfg.Telemetry != nil {
		// One Prometheus-text snapshot per tick, stamped with virtual time.
		// Failures are absorbed like other non-fatal driver errors: a broken
		// metrics sink must not abort a simulation.
		if _, err := fmt.Fprintf(d.cfg.MetricsLog, "# tick t=%.3f\n", d.eng.Now()); err != nil {
			d.errs = append(d.errs, fmt.Errorf("sim: metrics log: %w", err))
		} else if err := d.cfg.Telemetry.WritePrometheus(d.cfg.MetricsLog); err != nil {
			d.errs = append(d.errs, fmt.Errorf("sim: metrics log: %w", err))
		}
	}
	d.eng.Schedule(d.cfg.SampleEverySec, d.tickEvent)
}

// Samples returns the recorded observations in time order.
func (d *Driver) Samples() []Sample { return d.samples }

// Errors returns any non-fatal errors the driver absorbed (e.g. an
// infeasible reassignment under ErrorOnOverflow).
func (d *Driver) Errors() []error { return d.errs }

// Assignment returns the current assignment (aligned with the world's
// current client indexing).
func (d *Driver) Assignment() *core.Assignment {
	if d.planner != nil {
		d.syncFromPlanner()
	}
	return &core.Assignment{
		ZoneServer:    append([]int(nil), d.zoneServer...),
		ClientContact: append([]int(nil), d.contact...),
	}
}

// RepairStats returns the planner's counters; ok is false outside repair
// mode.
func (d *Driver) RepairStats() (st repair.Stats, ok bool) {
	if d.planner == nil {
		return repair.Stats{}, false
	}
	return d.planner.Stats(), true
}

// TotalZoneHandoffs returns how many zone rehostings the run has performed
// so far: per-reassign diffs in full-solve mode, the planner's count
// (localized moves plus full-solve diffs) in repair mode.
func (d *Driver) TotalZoneHandoffs() int {
	if d.planner != nil {
		return d.planner.Stats().ZoneHandoffs
	}
	total := 0
	for _, m := range d.zoneMoves {
		total += m
	}
	return total
}

func (d *Driver) joinEvent() {
	d.admitJoin()
	if d.cfg.JoinRate > 0 {
		d.eng.Schedule(d.rng.Exp(d.cfg.JoinRate), d.joinEvent)
	}
}

// admitJoin admits one client — shared by the constant-rate and
// trace-driven arrival processes.
func (d *Driver) admitJoin() {
	idx := d.world.Join(d.rng, 1)
	if d.planner != nil {
		if err := d.binding.Join(idx); err != nil {
			d.errs = append(d.errs, err)
		}
		if err := d.planner.TakeSolveErr(); err != nil {
			d.errs = append(d.errs, err)
		}
	} else {
		// Until the next reassignment a new client connects straight to its
		// zone's current server (the only server that can serve it at all).
		for _, j := range idx {
			d.contact = append(d.contact, d.zoneServer[d.world.ClientZones[j]])
		}
	}
}

func (d *Driver) scheduleLeave() {
	pop := d.world.NumClients()
	if pop == 0 {
		// No one to leave; re-arm after an average inter-join gap so the
		// process resumes once the population recovers.
		d.eng.Schedule(d.cfg.MeanSessionSec, d.scheduleLeave)
		return
	}
	rate := float64(pop) / d.cfg.MeanSessionSec
	d.eng.Schedule(d.rng.Exp(rate), d.leaveEvent)
}

func (d *Driver) leaveEvent() {
	if d.world.NumClients() > 0 {
		removed, err := d.world.Leave(d.rng, 1)
		switch {
		case err != nil:
			d.errs = append(d.errs, err)
		case d.planner != nil:
			if err := d.binding.Leave(removed); err != nil {
				d.errs = append(d.errs, err)
			}
			if err := d.planner.TakeSolveErr(); err != nil {
				d.errs = append(d.errs, err)
			}
		default:
			d.contact = dve.Compact(d.contact, removed)
		}
	}
	d.scheduleLeave()
}

func (d *Driver) scheduleMove() {
	pop := d.world.NumClients()
	if pop == 0 || d.cfg.MoveRatePerClient == 0 {
		d.eng.Schedule(d.cfg.MeanSessionSec, d.scheduleMove)
		return
	}
	rate := float64(pop) * d.cfg.MoveRatePerClient
	d.eng.Schedule(d.rng.Exp(rate), d.moveEvent)
}

func (d *Driver) moveEvent() {
	if d.world.NumClients() > 0 {
		moved, err := d.world.Move(d.rng, 1)
		switch {
		case err != nil:
			d.errs = append(d.errs, err)
		case d.planner != nil:
			if err := d.binding.Move(moved); err != nil {
				d.errs = append(d.errs, err)
			}
			if err := d.planner.TakeSolveErr(); err != nil {
				d.errs = append(d.errs, err)
			}
		default:
			// A moved avatar lands on its new zone's server until refined.
			for _, j := range moved {
				d.contact[j] = d.zoneServer[d.world.ClientZones[j]]
			}
		}
	}
	d.scheduleMove()
}

func (d *Driver) reassignEvent() {
	// One snapshot serves the pre-reassign sample, the solve, and the
	// post-reassign sample: no churn event can fire inside this event, so
	// the world — and hence the k×m delay matrix — cannot change.
	d.world.ProblemInto(&d.prob)
	if d.planner != nil {
		// Repair mode: events were repaired incrementally as they arrived;
		// the tick is the fallback cadence — it samples quality and runs a
		// full re-solve only when repair let pQoS drift past the threshold.
		d.syncFromPlanner()
		d.sampleWith(&d.prob, "pre-reassign")
		// A "post-reassign" sample is emitted only when the fallback solve
		// actually ran, so pre/post pairs always bracket a real solve.
		if d.planner.Stats().LastDriftPQoS > d.cfg.repairDrift() {
			if err := d.planner.FullSolve(); err != nil {
				d.errs = append(d.errs, err)
			}
			d.syncFromPlanner()
			d.sampleWith(&d.prob, "post-reassign")
		}
	} else {
		d.sampleWith(&d.prob, "pre-reassign")
		if err := d.reassignWith(&d.prob, "post-reassign"); err != nil {
			d.errs = append(d.errs, err)
		}
	}
	d.eng.Schedule(d.cfg.ReassignEverySec, d.reassignEvent)
}

// syncFromPlanner projects the planner's maintained solution back onto the
// driver's world-indexed assignment state. With the handoff model enabled,
// zones the planner rehosted since the last sync enter their freeze window
// now (repair-mode freezes are at sampling granularity).
func (d *Driver) syncFromPlanner() {
	n := d.world.Cfg.Zones
	freezeUntil := d.eng.Now() + d.cfg.HandoffFreezeSec
	for z := 0; z < n; z++ {
		s := d.planner.ZoneHost(z)
		if d.zoneFrozenUntil != nil && d.zoneServer[z] != s {
			d.zoneFrozenUntil[z] = freezeUntil
		}
		d.zoneServer[z] = s
	}
	handles := d.binding.Handles()
	k := len(handles)
	if cap(d.contact) < k {
		d.contact = make([]int, k)
	}
	d.contact = d.contact[:k]
	for j, h := range handles {
		c, err := d.planner.Contact(h)
		if err != nil {
			d.errs = append(d.errs, err)
			continue
		}
		d.contact[j] = c
	}
}

// reassign snapshots the current world, then recomputes the full two-phase
// assignment and records a sample labelled `label`.
func (d *Driver) reassign(label string) error {
	d.world.ProblemInto(&d.prob)
	return d.reassignWith(&d.prob, label)
}

// reassignWith is reassign on an already-built snapshot of the world.
func (d *Driver) reassignWith(p *core.Problem, label string) error {
	algo := d.algo
	if d.cfg.StickyBonus > 0 && label != "initial" && len(d.zoneServer) == p.NumZones {
		algo = d.algo.WithSticky(append([]int(nil), d.zoneServer...), d.cfg.StickyBonus)
	}
	a, err := algo.Solve(d.rng.Split(), p, d.opt)
	if err != nil {
		return err
	}
	if len(d.contact) == len(a.ClientContact) && label != "initial" {
		moves := 0
		for j := range d.contact {
			if d.contact[j] != a.ClientContact[j] {
				moves++
			}
		}
		d.contactMoves = append(d.contactMoves, moves)
	}
	if len(d.zoneServer) == len(a.ZoneServer) && label != "initial" {
		moves := 0
		for z := range d.zoneServer {
			if d.zoneServer[z] != a.ZoneServer[z] {
				moves++
			}
		}
		d.zoneMoves = append(d.zoneMoves, moves)
	}
	if d.cfg.HandoffFreezeSec > 0 {
		if d.zoneFrozenUntil == nil {
			d.zoneFrozenUntil = make([]float64, d.world.Cfg.Zones)
		}
		if label != "initial" && d.zoneServer != nil {
			until := d.eng.Now() + d.cfg.HandoffFreezeSec
			for z, s := range a.ZoneServer {
				if z < len(d.zoneServer) && d.zoneServer[z] != s {
					d.zoneFrozenUntil[z] = until
				}
			}
		}
	}
	d.zoneServer = a.ZoneServer
	d.contact = a.ClientContact
	d.sampleWith(p, label)
	return nil
}

// frozen reports whether zone z is mid-handoff at the current time.
func (d *Driver) frozen(z int) bool {
	return d.zoneFrozenUntil != nil && z < len(d.zoneFrozenUntil) &&
		d.zoneFrozenUntil[z] > d.eng.Now()
}

// ContactMovesPerReassign returns the per-re-execution contact-switch
// counts, in event order.
func (d *Driver) ContactMovesPerReassign() []int {
	return append([]int(nil), d.contactMoves...)
}

// MeanContactMovesPerReassign averages the disruption per re-execution
// (0 when no reassignment has happened yet).
func (d *Driver) MeanContactMovesPerReassign() float64 {
	if len(d.contactMoves) == 0 {
		return 0
	}
	sum := 0
	for _, m := range d.contactMoves {
		sum += m
	}
	return float64(sum) / float64(len(d.contactMoves))
}

// sample evaluates the current assignment against the current world.
func (d *Driver) sample(label string) {
	if d.planner != nil {
		d.syncFromPlanner()
	}
	d.world.ProblemInto(&d.prob)
	d.sampleWith(&d.prob, label)
}

// sampleWith is sample on an already-built snapshot of the world.
func (d *Driver) sampleWith(p *core.Problem, label string) {
	a := &core.Assignment{ZoneServer: d.zoneServer, ClientContact: d.contact}
	if len(d.contact) != p.NumClients() {
		// Defensive: misaligned state would make Evaluate panic.
		d.errs = append(d.errs, fmt.Errorf("sim: contact state has %d entries, world has %d clients",
			len(d.contact), p.NumClients()))
		return
	}
	d.ws.EvaluateInto(p, a, &d.evalM)
	m := &d.evalM
	pqos := m.PQoS
	if d.zoneFrozenUntil != nil && p.NumClients() > 0 {
		// Handoff model: clients of frozen zones have no QoS regardless of
		// their delay — their zone's state is mid-migration.
		withQoS := 0
		for j, z := range p.ClientZones {
			if d.frozen(z) {
				continue
			}
			if m.Delays[j] <= p.D {
				withQoS++
			}
		}
		pqos = float64(withQoS) / float64(p.NumClients())
	}
	d.samples = append(d.samples, Sample{
		Time:        d.eng.Now(),
		Event:       label,
		Clients:     p.NumClients(),
		PQoS:        pqos,
		Utilization: m.Utilization,
	})
	if reg := d.cfg.Telemetry; reg != nil {
		reg.Gauge("dvecap_sim_time_seconds", "Virtual time of the latest quality sample.").Set(d.eng.Now())
		reg.Gauge("dvecap_sim_clients", "Client population at the latest quality sample.").Set(float64(p.NumClients()))
		reg.Gauge("dvecap_sim_pqos", "pQoS at the latest quality sample (handoff freezes included).").Set(pqos)
		reg.Gauge("dvecap_sim_utilization", "Resource utilization R at the latest quality sample.").Set(m.Utilization)
		reg.Counter("dvecap_sim_samples_total", "Quality samples recorded, by trigger.", "event", label).Inc()
	}
}
