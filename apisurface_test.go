package dvecap

// Enforces the public-surface contract of the Cluster API redesign: no
// internal/... type may appear in an exported signature of this package —
// exported functions and methods (params and results), exported struct
// fields, exported type definitions, and typed exported vars/consts. The
// check is syntactic (go/ast over this package's sources), so it holds
// for every build tag combination without needing type information.
//
// Two legacy escape hatches predate the redesign and are documented as
// advanced, treat-as-read-only accessors; they are allowlisted explicitly
// rather than silently tolerated.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"
)

// legacyInternalEscapes are the pre-redesign declarations allowed to leak
// internal types. Keyed "Type.Method". Do not add entries: new API must
// speak in exported types only.
var legacyInternalEscapes = map[string]bool{
	"Scenario.World":  true, // returns *dve.World for cmd tools and benchmarks
	"Scenario.Config": true, // returns dve.Config
}

func TestExportedAPIExposesNoInternalTypes(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var violations []string
	// The file-driven scan covers every source file automatically; this
	// roster of surface anchors — one exported name per API generation,
	// live-topology verbs included — guards against the scan silently
	// running over an emptied or renamed surface.
	anchors := map[string]bool{
		"Cluster":            false, // PR 4 builder
		"ClusterSession":     false, // PR 4 session
		"ClientJoin":         false, // PR 5 batch join
		"ZoneSpec":           false, // PR 5 live zones
		"ServerStatus":       false, // PR 5 server inventory
		"UnmeasuredRTTMs":    false, // PR 5 deferred measurement sentinel
		"ErrServerNotEmpty":  false, // PR 5 topology sentinels
		"ErrLastServer":      false,
		"ErrZoneNotEmpty":    false,
		"ErrUnknownServer":   false,
		"WriteClusterJSON":   false, // PR 5 spec export (method)
		"JoinBatch":          false, // PR 5 batch join (method)
		"DrainServer":        false, // PR 5 drain (method)
		"UpdateServerDelays": false, // PR 5 column-form refresh (method)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		violations = append(violations, fileViolations(fset, f)...)
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if _, ok := anchors[d.Name.Name]; ok {
					anchors[d.Name.Name] = true
				}
			case *ast.TypeSpec:
				if _, ok := anchors[d.Name.Name]; ok {
					anchors[d.Name.Name] = true
				}
			case *ast.ValueSpec:
				for _, id := range d.Names {
					if _, ok := anchors[id.Name]; ok {
						anchors[id.Name] = true
					}
				}
			}
			return true
		})
	}
	for _, v := range violations {
		t.Errorf("internal type in exported signature: %s", v)
	}
	for name, seen := range anchors {
		if !seen {
			t.Errorf("expected exported surface anchor %q not found in package sources", name)
		}
	}
}

// fileViolations scans one file's exported declarations for references to
// internal imports.
func fileViolations(fset *token.FileSet, f *ast.File) []string {
	// Local name → true for every dvecap/internal/... import.
	internalPkgs := map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.HasPrefix(path, "dvecap/internal/") {
			continue
		}
		local := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		internalPkgs[local] = true
	}
	if len(internalPkgs) == 0 {
		return nil
	}

	var out []string
	report := func(where string, expr ast.Expr) {
		ast.Inspect(expr, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && internalPkgs[id.Name] {
				out = append(out, fmt.Sprintf("%s: %s references %s.%s",
					fset.Position(sel.Pos()), where, id.Name, sel.Sel.Name))
			}
			return true
		})
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			where := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				recv := receiverTypeName(d.Recv.List[0].Type)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type is not public API
				}
				where = recv + "." + d.Name.Name
			}
			if legacyInternalEscapes[where] {
				continue
			}
			if d.Type.Params != nil {
				for _, p := range d.Type.Params.List {
					report("func "+where, p.Type)
				}
			}
			if d.Type.Results != nil {
				for _, r := range d.Type.Results.List {
					report("func "+where, r.Type)
				}
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() {
						reportTypeExpr(report, "type "+s.Name.Name, s.Type)
					}
				case *ast.ValueSpec:
					if s.Type == nil {
						continue // untyped var/const: only the value mentions the package
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report("var "+n.Name, s.Type)
						}
					}
				}
			}
		}
	}
	return out
}

// reportTypeExpr walks an exported type definition, descending only into
// its exported parts: unexported struct fields and interface methods are
// implementation detail, free to hold internal types.
func reportTypeExpr(report func(string, ast.Expr), where string, expr ast.Expr) {
	switch t := expr.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			if len(field.Names) == 0 { // embedded
				report(where, field.Type)
				continue
			}
			for _, n := range field.Names {
				if n.IsExported() {
					report(where+"."+n.Name, field.Type)
					break
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 || m.Names[0].IsExported() {
				report(where, m.Type)
			}
		}
	default:
		report(where, expr)
	}
}

func receiverTypeName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
