package xrand

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependentOfParentConsumption(t *testing.T) {
	a, b := New(7), New(7)
	// Consume different amounts from each parent before splitting.
	for i := 0; i < 10; i++ {
		a.Float64()
	}
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatalf("split children diverged at draw %d", i)
		}
	}
}

func TestSplitNMatchesOrder(t *testing.T) {
	a := New(9)
	c3 := a.SplitN(3)
	b := New(9)
	b.Split() // 1
	b.Split() // 2
	c3b := b.Split()
	for i := 0; i < 50; i++ {
		if c3.Float64() != c3b.Float64() {
			t.Fatalf("SplitN(3) != third Split at draw %d", i)
		}
	}
}

func TestSplitChildrenDistinct(t *testing.T) {
	a := New(11)
	c1, c2 := a.Split(), a.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams overlapped %d/100 draws", same)
	}
}

func TestUniformBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Uniform out of bounds: %v", v)
		}
	}
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(4)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.IntRange(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d", v)
		}
	}
}

func TestIntRangeSingleton(t *testing.T) {
	r := New(5)
	if v := r.IntRange(9, 9); v != 9 {
		t.Fatalf("IntRange(9,9) = %d", v)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) empirical rate %v", p)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Exp(4) empirical mean %v, want 0.25", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(10)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	want := []float64{0.1, 0.3, 0.6}
	for i, c := range counts {
		p := float64(c) / float64(n)
		if math.Abs(p-want[i]) > 0.01 {
			t.Fatalf("weight %d: got rate %v want %v", i, p, want[i])
		}
	}
}

func TestWeightedChoiceZeroWeightNeverChosen(t *testing.T) {
	r := New(12)
	w := []float64{0, 1, 0}
	for i := 0; i < 1000; i++ {
		if got := r.WeightedChoice(w); got != 1 {
			t.Fatalf("chose zero-weight index %d", got)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedChoice(%v) did not panic", w)
				}
			}()
			New(1).WeightedChoice(w)
		}()
	}
}

func TestSimplexSumAndFloor(t *testing.T) {
	r := New(13)
	for trial := 0; trial < 200; trial++ {
		n := r.IntRange(1, 30)
		total := r.Uniform(10, 1000)
		minimum := total / float64(n) * r.Uniform(0, 0.9)
		parts := r.Simplex(n, total, minimum)
		if len(parts) != n {
			t.Fatalf("got %d parts want %d", len(parts), n)
		}
		var sum float64
		for _, p := range parts {
			if p < minimum-1e-9 {
				t.Fatalf("part %v below floor %v", p, minimum)
			}
			sum += p
		}
		if math.Abs(sum-total) > 1e-6*total {
			t.Fatalf("parts sum %v, want %v", sum, total)
		}
	}
}

func TestSimplexPanicsWhenInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Simplex with min*n > total did not panic")
		}
	}()
	New(1).Simplex(10, 5, 1)
}

func TestSampleWithoutProperties(t *testing.T) {
	f := func(seed uint64, rawN, rawK uint16) bool {
		n := int(rawN%200) + 1
		k := int(rawK) % (n + 1)
		got := New(seed).SampleWithout(n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutCoversAll(t *testing.T) {
	got := New(2).SampleWithout(5, 5)
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample missed values: %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN % 64)
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(21)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sq/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("Norm(5,2): mean %v std %v", mean, std)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	// Consume values and derive children so the captured state is mid-stream.
	for i := 0; i < 57; i++ {
		r.Float64()
	}
	r.Split().IntN(10)
	r.Split()
	st, err := r.State()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if q.Seed() != r.Seed() {
		t.Fatalf("restored seed %d, want %d", q.Seed(), r.Seed())
	}
	for i := 0; i < 500; i++ {
		if a, b := r.Float64(), q.Float64(); a != b {
			t.Fatalf("value stream diverges at %d: %v vs %v", i, a, b)
		}
	}
	// The split derivation sequence must continue identically too.
	ca, cb := r.Split(), q.Split()
	for i := 0; i < 100; i++ {
		if a, b := ca.IntN(1 << 20), cb.IntN(1 << 20); a != b {
			t.Fatalf("child stream diverges at %d: %v vs %v", i, a, b)
		}
	}
}

func TestStateRoundTripJSON(t *testing.T) {
	r := New(7)
	r.Float64()
	st, err := r.State()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	q, err := Restore(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := r.Float64(), q.Float64(); a != b {
			t.Fatalf("value stream diverges after JSON round-trip at %d", i)
		}
	}
}
