package dvecap

import (
	"strings"
	"testing"
)

const specJSON = `{
  "delay_bound_ms": 100,
  "servers": [
    {"id": "fra", "capacity_mbps": 100, "rtts_ms": {"nyc": 80}},
    {"id": "nyc", "capacity_mbps": 100}
  ],
  "zones": ["plaza", "forest"],
  "clients": [
    {"id": "alice", "zone": "plaza", "bandwidth_mbps": 2, "rtts_ms": {"fra": 20, "nyc": 95}},
    {"id": "bruno", "zone": "plaza", "bandwidth_mbps": 2, "rtts_ms": {"fra": 30, "nyc": 90}},
    {"id": "chloe", "zone": "forest", "bandwidth_mbps": 2, "rtt_row_ms": [95, 15]},
    {"id": "diego", "zone": "forest", "bandwidth_mbps": 2, "rtt_row_ms": [90, 25]}
  ]
}`

// TestReadClusterJSON checks the spec maps onto the exact builder calls:
// the loaded cluster must solve identically to the hand-built one.
func TestReadClusterJSON(t *testing.T) {
	c, err := ReadClusterJSON(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := smallCluster(t).Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "json vs builder", got, want)
	for i, id := range want.ClientIDs {
		if got.ClientIDs[i] != id {
			t.Fatalf("client %d named %q, want %q", i, got.ClientIDs[i], id)
		}
	}
}

func TestReadClusterJSONFullMatrix(t *testing.T) {
	spec := strings.Replace(specJSON,
		`{"id": "fra", "capacity_mbps": 100, "rtts_ms": {"nyc": 80}},`,
		`{"id": "fra", "capacity_mbps": 100},`, 1)
	spec = strings.Replace(spec, `"zones":`,
		`"server_rtts_ms": [[0, 80], [80, 0]],
  "zones":`, 1)
	c, err := ReadClusterJSON(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := smallCluster(t).Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "matrix vs pairwise", got, want)
}

func TestReadClusterJSONErrors(t *testing.T) {
	cases := map[string]string{
		"malformed":        `{`,
		"missing pair":     strings.Replace(specJSON, `, "rtts_ms": {"nyc": 80}`, ``, 1),
		"unknown zone":     strings.Replace(specJSON, `"zone": "plaza"`, `"zone": "atlantis"`, 1),
		"zero capacity":    strings.Replace(specJSON, `"capacity_mbps": 100,`, `"capacity_mbps": 0,`, 1),
		"duplicate server": strings.Replace(specJSON, `"id": "nyc"`, `"id": "fra"`, 1),
		"duplicate client": strings.Replace(specJSON, `"id": "bruno"`, `"id": "alice"`, 1),
		"short rtt row":    strings.Replace(specJSON, `[95, 15]`, `[95]`, 1),
		"uncovered client": strings.Replace(specJSON, `{"fra": 20, "nyc": 95}`, `{"fra": 20}`, 1),
		"both rtt forms": strings.Replace(specJSON,
			`"rtt_row_ms": [95, 15]`, `"rtt_row_ms": [95, 15], "rtts_ms": {"fra": 95, "nyc": 15}`, 1),
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadClusterJSON(strings.NewReader(spec)); err == nil {
				t.Fatalf("invalid spec accepted")
			}
		})
	}
}
