// Package runner executes replicated simulation runs in parallel. The
// paper's every data point averages 50 independent runs; this package
// spreads those runs over a worker pool while keeping results bitwise
// reproducible: replication r always receives the RNG stream derived from
// (baseSeed, r), regardless of worker scheduling.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"dvecap/internal/xrand"
)

// Run executes fn for reps replications across min(GOMAXPROCS, reps)
// workers and returns the per-replication results in replication order.
// Each replication gets an independent, deterministic RNG derived from
// baseSeed. The first error aborts the whole batch.
func Run[T any](baseSeed uint64, reps int, fn func(rep int, rng *xrand.RNG) (T, error)) ([]T, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("runner: reps = %d, want > 0", reps)
	}
	results := make([]T, reps)
	errs := make([]error, reps)
	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	root := xrand.New(baseSeed)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				rep := next
				next++
				mu.Unlock()
				if rep >= reps {
					return
				}
				rng := root.SplitN(uint64(rep) + 1)
				results[rep], errs[rep] = fn(rep, rng)
			}
		}()
	}
	wg.Wait()
	for rep, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: replication %d: %w", rep, err)
		}
	}
	return results, nil
}

// Collect folds replication results into an accumulator in replication
// order (deterministic regardless of scheduling).
func Collect[T, A any](results []T, zero A, fold func(A, T) A) A {
	acc := zero
	for _, r := range results {
		acc = fold(acc, r)
	}
	return acc
}
