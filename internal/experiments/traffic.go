package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/interact"
	"dvecap/internal/metrics"
	"dvecap/internal/repair"
	"dvecap/internal/runner"
	"dvecap/internal/vworld"
	"dvecap/internal/xrand"
)

// TrafficOptions tunes the inter-server traffic comparison (DESIGN.md
// §15): a mobility-driven workload — avatars walking a zone grid under
// hotspot attraction and correlated group movement — produces zone
// crossings that both relocate clients (churn the repair planner consumes)
// and accumulate observed zone-interaction weights. Two arms run on
// identical world, mobility and solver seeds: delay-only (TrafficWeight 0,
// the paper's objective) and traffic-aware (the λ-weighted cut term in the
// search objective). The question: how much measured cross-server traffic
// — state broadcast across cut interaction edges plus cross-server avatar
// handoffs — does the traffic term remove, and what does it cost in pQoS
// and zone-rehosting disruption?
type TrafficOptions struct {
	// HorizonSec is the simulated duration per run (default 600).
	HorizonSec float64
	// WarmupSec is the observation window before measurement starts
	// (default HorizonSec/3): crossings accumulate interaction weights and
	// consolidation acts on them, but traffic and pQoS integrals only run
	// from here — the arms are compared in steady state, not during the
	// identical cold-start in which no observations exist yet.
	WarmupSec float64
	// TickSec is the mobility step (default 1).
	TickSec float64
	// Scenario defaults to 20s-80z-1000c-800cp — the paper's default world
	// with capacity headroom over the 500 Mbps baseline. Headroom matters:
	// the quadratic bandwidth model makes a hotspot zone consume most of a
	// tightly-provisioned server, which blocks co-hosting it with its
	// heavy-interaction neighbours and caps what any traffic term can save.
	Scenario string
	// Weight is the traffic-aware arm's λ (default 2; the delay-only arm
	// always runs λ = 0).
	Weight float64
	// CrossingMbps is the interaction weight one observed crossing
	// accumulates onto its (from, to) zone edge (default 0.05).
	CrossingMbps float64
	// HandoffMbits is the state-transfer volume one cross-server avatar
	// handoff costs (default 1; co-hosted crossings are free).
	HandoffMbits float64
	// OptimizeEverySec is the consolidation cadence: both arms run the same
	// periodic local-search passes, the traffic-aware one under the full
	// objective (default 15).
	OptimizeEverySec float64
	// OptimizeRounds is the pass count per cadence tick (default 6; each
	// round accepts at most one zone move, so this bounds moves per cadence).
	OptimizeRounds int
	// Workers configures the planner evaluator's worker count (default 1).
	// Results are bit-identical for every value; see
	// TestTrafficTraceDeterministicAcrossWorkers.
	Workers int
	// Mobility overrides the avatar model (Avatars is forced to the
	// scenario's client count). Default: speeds 5–15 u/s on a 100-unit zone
	// grid, 2 s mean pause, clients/10 movement groups at bias 0.85.
	Mobility *vworld.Config
	// JSONOut, when set, additionally receives the result as a
	// BENCH_traffic.json-shaped document.
	JSONOut io.Writer
}

func (o TrafficOptions) withDefaults() TrafficOptions {
	if o.HorizonSec == 0 {
		o.HorizonSec = 600
	}
	if o.WarmupSec == 0 {
		o.WarmupSec = o.HorizonSec / 3
	}
	if o.TickSec == 0 {
		o.TickSec = 1
	}
	if o.Scenario == "" {
		o.Scenario = "20s-80z-1000c-800cp"
	}
	if o.Weight == 0 {
		o.Weight = 2
	}
	if o.CrossingMbps == 0 {
		o.CrossingMbps = 0.05
	}
	if o.HandoffMbits == 0 {
		o.HandoffMbits = 1
	}
	if o.OptimizeEverySec == 0 {
		o.OptimizeEverySec = 15
	}
	if o.OptimizeRounds == 0 {
		o.OptimizeRounds = 6
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// mobility resolves the avatar model for a scenario.
func (o TrafficOptions) mobility(cfg dve.Config) vworld.Config {
	if o.Mobility != nil {
		m := *o.Mobility
		m.Avatars = cfg.Clients
		return m
	}
	groups := cfg.Clients / 10
	if groups < 1 {
		groups = 1
	}
	return vworld.Config{
		Avatars:      cfg.Clients,
		MinSpeed:     5,
		MaxSpeed:     15,
		PauseMeanSec: 2,
		// Four hotspots at the grid's quarter points: towns and quest hubs
		// that attract a third of all waypoints, concentrating interaction
		// weight on the zone pairs around them.
		HotZones:  quarterPoints(gridShape(cfg.Zones)),
		HotBias:   0.35,
		Groups:    groups,
		GroupBias: 0.85,
	}
}

// quarterPoints returns the zones at the four (¼,¼)…(¾,¾) grid positions
// (deduplicated on degenerate grids).
func quarterPoints(cols, rows int) []int {
	var out []int
	for _, rq := range [2]int{rows / 4, 3 * rows / 4} {
		for _, cq := range [2]int{cols / 4, 3 * cols / 4} {
			z := rq*cols + cq
			dup := false
			for _, have := range out {
				dup = dup || have == z
			}
			if !dup {
				out = append(out, z)
			}
		}
	}
	return out
}

// gridShape factors a zone count into the most-square Cols × Rows grid.
func gridShape(zones int) (cols, rows int) {
	rows = 1
	for r := int(math.Sqrt(float64(zones))); r >= 1; r-- {
		if zones%r == 0 {
			rows = r
			break
		}
	}
	return zones / rows, rows
}

// zoneSideUnits is the virtual-distance side length of one grid zone.
const zoneSideUnits = 100.0

// TrafficMode is one arm's aggregate outcome.
type TrafficMode struct {
	Name string
	// CrossTrafficMbps is the measured cross-server traffic rate:
	// time-averaged broadcast across cut interaction edges plus the
	// amortized cross-server handoff state transfers.
	CrossTrafficMbps metrics.Summary
	// BroadcastMbps is the broadcast component alone (time-averaged cut
	// weight of the observed interaction graph).
	BroadcastMbps metrics.Summary
	// CrossHandoffFrac is the fraction of zone crossings whose endpoint
	// zones were hosted on different servers at crossing time.
	CrossHandoffFrac metrics.Summary
	// TimeAvgPQoS integrates pQoS over the run.
	TimeAvgPQoS metrics.Summary
	// ZoneHandoffs counts zone rehostings per run — the disruption the
	// traffic term buys its savings with.
	ZoneHandoffs metrics.Summary
}

// TrafficResult is the two-arm comparison outcome.
type TrafficResult struct {
	DelayOnly    TrafficMode
	TrafficAware TrafficMode
	HorizonSec   float64
	Weight       float64
}

// trafficArm is one arm's single-run measurements. digest folds the
// per-tick zone populations, interaction edge weights and zone hosting
// into one FNV-1a value, so worker-count determinism is checkable over the
// whole trajectory, not just the end state.
type trafficArm struct {
	crossTrafficMbps float64
	broadcastMbps    float64
	crossHandoffFrac float64
	pqos             float64
	zoneHandoffs     int
	digest           uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// runTrafficArm drives one arm: the identical mobility trace (worldSeed,
// mobSeed, solveSeed fix everything but λ) through a repair planner,
// feeding each crossing back as a Move event plus an observed adjacency
// increment, with periodic traffic-aware consolidation.
func runTrafficArm(setup Setup, opt TrafficOptions, cfg dve.Config, lambda float64,
	worldSeed, mobSeed, solveSeed uint64) (trafficArm, error) {
	var res trafficArm
	world, err := setup.buildWorld(xrand.New(worldSeed), cfg)
	if err != nil {
		return res, err
	}
	cols, rows := gridShape(cfg.Zones)
	m, err := vworld.NewMap(float64(cols)*zoneSideUnits, float64(rows)*zoneSideUnits, cols, rows)
	if err != nil {
		return res, err
	}
	vw, err := vworld.NewWorld(xrand.New(mobSeed), m, opt.mobility(cfg))
	if err != nil {
		return res, err
	}
	// The avatars' initial zones replace the scenario's virtual placement:
	// client j is avatar j, in both the problem and the planner's handles.
	if err := world.SetClientZones(vw.ZoneVector()); err != nil {
		return res, err
	}
	truth := world.Problem()
	truth.Adjacency = interact.New(cfg.Zones)
	truth.TrafficWeight = lambda
	srng := xrand.New(solveSeed)
	sopt := scratchOpts()
	sopt.Workers = opt.Workers
	// The interaction graph is empty at t=0, so the initial solve is
	// identical across arms regardless of λ.
	a, err := core.GreZGreC.Solve(srng.Split(), truth, sopt)
	if err != nil {
		return res, err
	}
	plOpt := solveOpts
	plOpt.Workers = opt.Workers
	pl, err := repair.NewWithAssignment(repair.Config{Algo: core.GreZGreC, Opt: plOpt}, truth, a, srng.Split())
	if err != nil {
		return res, err
	}

	ticks := int(opt.HorizonSec/opt.TickSec + 0.5)
	warmTicks := int(opt.WarmupSec/opt.TickSec + 0.5)
	if warmTicks >= ticks {
		return res, fmt.Errorf("experiments: warmup %gs swallows the %gs horizon", opt.WarmupSec, opt.HorizonSec)
	}
	optEvery := int(opt.OptimizeEverySec/opt.TickSec + 0.5)
	if optEvery < 1 {
		optEvery = 1
	}
	measuredSec := float64(ticks-warmTicks) * opt.TickSec
	touched := make([]bool, cfg.Zones)
	var broadcastInt, pqosInt float64
	crossings, crossHandoffs := 0, 0
	res.digest = fnvOffset
	for tick := 1; tick <= ticks; tick++ {
		measuring := tick > warmTicks
		cs := vw.StepCrossings(opt.TickSec)
		for _, c := range cs {
			if measuring {
				crossings++
				if pl.ZoneHost(c.From) != pl.ZoneHost(c.To) {
					crossHandoffs++
				}
			}
			if err := pl.Move(c.Avatar, c.To); err != nil {
				return res, err
			}
			if err := pl.AddAdjacency(c.From, c.To, opt.CrossingMbps); err != nil {
				return res, err
			}
			touched[c.From], touched[c.To] = true, true
		}
		pops := vw.Populations()
		// Population-dependent bandwidth: reprice the zones the tick's
		// crossings changed (every resident's RT shifts with the zone count).
		for z, t := range touched {
			if !t {
				continue
			}
			touched[z] = false
			if err := pl.RefreshZoneRT(z, cfg.ClientRTMbps(pops[z])); err != nil {
				return res, err
			}
		}
		if tick%optEvery == 0 {
			pl.Optimize(opt.OptimizeRounds)
		}
		if measuring {
			broadcastInt += pl.TrafficCut() * opt.TickSec
			pqosInt += pl.PQoS() * opt.TickSec
		}
		for _, p := range pops {
			res.digest = mix(res.digest, uint64(p))
		}
		for _, e := range pl.Problem().Adjacency.Edges() {
			res.digest = mix(res.digest, uint64(e.A)<<32|uint64(e.B))
			res.digest = mix(res.digest, math.Float64bits(e.W))
		}
		for _, s := range pl.ZoneServers() {
			res.digest = mix(res.digest, uint64(s))
		}
	}
	res.broadcastMbps = broadcastInt / measuredSec
	res.crossTrafficMbps = res.broadcastMbps + opt.HandoffMbits*float64(crossHandoffs)/measuredSec
	if crossings > 0 {
		res.crossHandoffFrac = float64(crossHandoffs) / float64(crossings)
	}
	res.pqos = pqosInt / measuredSec
	res.zoneHandoffs = pl.Stats().ZoneHandoffs
	return res, nil
}

// Traffic runs the comparison with GreZ-GreC.
func Traffic(setup Setup, opt TrafficOptions) (*TrafficResult, error) {
	setup = setup.withDefaults()
	opt = opt.withDefaults()
	cfg, err := dve.ParseScenario(dve.DefaultConfig(), opt.Scenario)
	if err != nil {
		return nil, err
	}
	type out struct {
		arms [2]trafficArm
	}
	reps, err := runner.Run(setup.Seed, setup.Reps, func(rep int, rng *xrand.RNG) (out, error) {
		var o out
		worldSeed, mobSeed, solveSeed := rng.Split().Seed(), rng.Split().Seed(), rng.Split().Seed()
		for arm := 0; arm < 2; arm++ {
			lambda := 0.0
			if arm == 1 {
				lambda = opt.Weight
			}
			r, err := runTrafficArm(setup, opt, cfg, lambda, worldSeed, mobSeed, solveSeed)
			if err != nil {
				return out{}, fmt.Errorf("rep %d arm %d: %w", rep, arm, err)
			}
			o.arms[arm] = r
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	res := &TrafficResult{
		DelayOnly:    TrafficMode{Name: "delay-only (λ=0)"},
		TrafficAware: TrafficMode{Name: fmt.Sprintf("traffic-aware (λ=%g)", opt.Weight)},
		HorizonSec:   opt.HorizonSec,
		Weight:       opt.Weight,
	}
	for _, r := range reps {
		for arm, m := range []*TrafficMode{&res.DelayOnly, &res.TrafficAware} {
			m.CrossTrafficMbps.Add(r.arms[arm].crossTrafficMbps)
			m.BroadcastMbps.Add(r.arms[arm].broadcastMbps)
			m.CrossHandoffFrac.Add(r.arms[arm].crossHandoffFrac)
			m.TimeAvgPQoS.Add(r.arms[arm].pqos)
			m.ZoneHandoffs.Add(float64(r.arms[arm].zoneHandoffs))
		}
	}
	if opt.JSONOut != nil {
		if err := res.WriteJSON(opt.JSONOut); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Reduction is the traffic-aware arm's fractional saving in measured
// cross-server traffic against the delay-only baseline.
func (r *TrafficResult) Reduction() float64 {
	base := r.DelayOnly.CrossTrafficMbps.Mean()
	if base == 0 {
		return 0
	}
	return 1 - r.TrafficAware.CrossTrafficMbps.Mean()/base
}

// PQoSDelta is traffic-aware minus delay-only time-averaged pQoS.
func (r *TrafficResult) PQoSDelta() float64 {
	return r.TrafficAware.TimeAvgPQoS.Mean() - r.DelayOnly.TimeAvgPQoS.Mean()
}

// String renders the comparison.
func (r *TrafficResult) String() string {
	tb := metrics.NewTable("mode", "cross-traffic Mbps", "broadcast Mbps", "cross-handoff frac", "time-avg pQoS", "zone handoffs/run")
	for _, m := range []*TrafficMode{&r.DelayOnly, &r.TrafficAware} {
		tb.AddRow(
			m.Name,
			fmt.Sprintf("%.2f", m.CrossTrafficMbps.Mean()),
			fmt.Sprintf("%.2f", m.BroadcastMbps.Mean()),
			fmt.Sprintf("%.3f", m.CrossHandoffFrac.Mean()),
			fmt.Sprintf("%.4f", m.TimeAvgPQoS.Mean()),
			fmt.Sprintf("%.1f", m.ZoneHandoffs.Mean()))
	}
	var b strings.Builder
	b.WriteString("Traffic: delay-only vs traffic-aware assignment under mobility-driven interaction (DESIGN.md §15)\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "traffic-aware vs delay-only: %.1f%% less cross-server traffic, %+.4f pQoS\n",
		100*r.Reduction(), r.PQoSDelta())
	return b.String()
}

// WriteJSON emits the BENCH_traffic.json document shape.
func (r *TrafficResult) WriteJSON(w io.Writer) error {
	type mode struct {
		CrossTrafficMbps float64 `json:"cross_server_traffic_mbps"`
		BroadcastMbps    float64 `json:"broadcast_mbps"`
		CrossHandoffFrac float64 `json:"cross_handoff_frac"`
		TimeAvgPQoS      float64 `json:"time_avg_pqos"`
		ZoneHandoffs     float64 `json:"zone_handoffs_per_run"`
	}
	render := func(m *TrafficMode) mode {
		return mode{
			CrossTrafficMbps: m.CrossTrafficMbps.Mean(),
			BroadcastMbps:    m.BroadcastMbps.Mean(),
			CrossHandoffFrac: m.CrossHandoffFrac.Mean(),
			TimeAvgPQoS:      m.TimeAvgPQoS.Mean(),
			ZoneHandoffs:     m.ZoneHandoffs.Mean(),
		}
	}
	doc := struct {
		Description  string  `json:"description"`
		HorizonSec   float64 `json:"horizon_sec"`
		Weight       float64 `json:"traffic_weight"`
		DelayOnly    mode    `json:"delay_only"`
		TrafficAware mode    `json:"traffic_aware"`
		Reduction    float64 `json:"cross_traffic_reduction"`
		PQoSDelta    float64 `json:"pqos_delta"`
	}{
		Description:  "Inter-server traffic objective (DESIGN.md §15) under a mobility-driven workload: avatars on a zone grid with hotspot attraction and correlated group movement produce zone crossings that churn the repair planner and accumulate observed interaction weights; delay-only (λ=0, the paper's objective) vs traffic-aware assignment on identical world, mobility and solver seeds.",
		HorizonSec:   r.HorizonSec,
		Weight:       r.Weight,
		DelayOnly:    render(&r.DelayOnly),
		TrafficAware: render(&r.TrafficAware),
		Reduction:    r.Reduction(),
		PQoSDelta:    r.PQoSDelta(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
