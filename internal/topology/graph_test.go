package topology

import (
	"bytes"
	"math"
	"testing"
)

func line(delays ...float64) *Graph {
	g := NewGraph(len(delays)+1, len(delays))
	for i := 0; i <= len(delays); i++ {
		g.AddNode(Point{X: float64(i)}, 0)
	}
	for i, d := range delays {
		g.AddEdge(i, i+1, d)
	}
	return g
}

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := NewGraph(0, 0)
	for i := 0; i < 5; i++ {
		if id := g.AddNode(Point{}, 0); id != i {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(g *Graph)
	}{
		{"out of range", func(g *Graph) { g.AddEdge(0, 9, 1) }},
		{"self loop", func(g *Graph) { g.AddEdge(1, 1, 1) }},
		{"negative delay", func(g *Graph) { g.AddEdge(0, 1, -1) }},
		{"nan delay", func(g *Graph) { g.AddEdge(0, 1, math.NaN()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGraph(2, 1)
			g.AddNode(Point{}, 0)
			g.AddNode(Point{}, 0)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f(g)
		})
	}
}

func TestHasEdgeAndDegree(t *testing.T) {
	g := line(1, 2, 3)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("expected undirected edge 0-1")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected edge 0-2")
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2", d)
	}
	if d := g.Degree(0); d != 1 {
		t.Fatalf("Degree(0) = %d, want 1", d)
	}
}

func TestConnected(t *testing.T) {
	g := line(1, 1)
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
	g.AddNode(Point{}, 0) // isolated node
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	empty := NewGraph(0, 0)
	if !empty.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestValidateCatchesDuplicateEdges(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddNode(Point{}, 0)
	g.AddNode(Point{}, 0)
	g.AddEdge(0, 1, 1)
	// Duplicate in reverse orientation must also be caught.
	g.Edges = append(g.Edges, Edge{A: 1, B: 0, Delay: 2})
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed duplicate undirected edge")
	}
}

func TestValidateOK(t *testing.T) {
	if err := line(1, 2, 3).Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestNodesInAS(t *testing.T) {
	g := NewGraph(4, 0)
	g.AddNode(Point{}, 0)
	g.AddNode(Point{}, 1)
	g.AddNode(Point{}, 0)
	g.AddNode(Point{}, 2)
	got := g.NodesInAS(0)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("NodesInAS(0) = %v", got)
	}
	if g.ASCount() != 3 {
		t.Fatalf("ASCount = %d, want 3", g.ASCount())
	}
}

func TestStats(t *testing.T) {
	s := line(1, 1, 1).Stats()
	if s.Nodes != 4 || s.Edges != 3 || !s.Connected {
		t.Fatalf("unexpected stats %+v", s)
	}
	if s.MinDegree != 1 || s.MaxDegree != 2 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if math.Abs(s.MeanDegree-1.5) > 1e-12 {
		t.Fatalf("mean degree %v, want 1.5", s.MeanDegree)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := USBackbone()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", got.N(), got.M(), g.N(), g.M())
	}
	for i := range g.Nodes {
		if g.Nodes[i] != got.Nodes[i] {
			t.Fatalf("node %d changed: %+v vs %+v", i, g.Nodes[i], got.Nodes[i])
		}
	}
	for i := range g.Edges {
		if g.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d changed", i)
		}
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"unsorted ids": `{"nodes":[{"id":1,"x":0,"y":0,"as":0}],"edges":[]}`,
		"bad edge":     `{"nodes":[{"id":0,"x":0,"y":0,"as":0}],"edges":[{"a":0,"b":5,"delay":1}]}`,
		"self loop":    `{"nodes":[{"id":0,"x":0,"y":0,"as":0},{"id":1,"x":0,"y":0,"as":0}],"edges":[{"a":0,"b":0,"delay":1}]}`,
		"negative":     `{"nodes":[{"id":0,"x":0,"y":0,"as":0},{"id":1,"x":0,"y":0,"as":0}],"edges":[{"a":0,"b":1,"delay":-4}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(bytes.NewReader([]byte(in))); err == nil {
				t.Fatalf("ReadJSON accepted %s", name)
			}
		})
	}
}

func TestDegreeSequenceSorted(t *testing.T) {
	seq := USBackbone().DegreeSequence()
	for i := 1; i < len(seq); i++ {
		if seq[i] > seq[i-1] {
			t.Fatalf("degree sequence not descending at %d", i)
		}
	}
}
