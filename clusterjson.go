package dvecap

import (
	"encoding/json"
	"fmt"
	"io"
)

// clusterJSON is the interchange form of a Cluster spec: the contract
// between real deployments (measured inventories exported by ops tooling)
// and this package — cmd/capassign -cluster consumes it directly.
type clusterJSON struct {
	DelayBoundMs float64      `json:"delay_bound_ms"`
	Servers      []serverJSON `json:"servers"`
	ServerRTTsMs [][]float64  `json:"server_rtts_ms,omitempty"`
	Zones        []string     `json:"zones"`
	Clients      []clientJSON `json:"clients"`
}

type serverJSON struct {
	ID           string             `json:"id"`
	CapacityMbps float64            `json:"capacity_mbps"`
	RTTsMs       map[string]float64 `json:"rtts_ms,omitempty"`
}

type clientJSON struct {
	ID            string             `json:"id"`
	Zone          string             `json:"zone"`
	BandwidthMbps float64            `json:"bandwidth_mbps"`
	RTTsMs        map[string]float64 `json:"rtts_ms,omitempty"`
	RTTRowMs      []float64          `json:"rtt_row_ms,omitempty"`
}

// ReadClusterJSON builds a Cluster from its JSON spec:
//
//	{
//	  "delay_bound_ms": 250,
//	  "servers": [
//	    {"id": "fra", "capacity_mbps": 500, "rtts_ms": {"nyc": 80}},
//	    {"id": "nyc", "capacity_mbps": 500}
//	  ],
//	  "zones": ["plaza", "forest"],
//	  "clients": [
//	    {"id": "alice", "zone": "plaza", "bandwidth_mbps": 0.5,
//	     "rtts_ms": {"fra": 20, "nyc": 95}}
//	  ]
//	}
//
// server_rtts_ms may supply the full inter-server matrix (in servers
// order) instead of per-pair rtts_ms entries; clients may use rtt_row_ms
// (in servers order) instead of the rtts_ms map. The spec is validated
// exactly like the builder calls it maps to.
func ReadClusterJSON(r io.Reader) (*Cluster, error) {
	var cj clusterJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, fmt.Errorf("dvecap: decoding cluster spec: %w", err)
	}
	c := NewCluster(cj.DelayBoundMs)
	for _, s := range cj.Servers {
		if err := c.AddServer(s.ID, ServerSpec{CapacityMbps: s.CapacityMbps, RTTs: s.RTTsMs}); err != nil {
			return nil, err
		}
	}
	if cj.ServerRTTsMs != nil {
		if err := c.SetServerRTTs(cj.ServerRTTsMs); err != nil {
			return nil, err
		}
	}
	for _, z := range cj.Zones {
		if err := c.AddZone(z); err != nil {
			return nil, err
		}
	}
	for _, cl := range cj.Clients {
		if err := c.AddClient(cl.ID, ClientSpec{
			Zone:          cl.Zone,
			BandwidthMbps: cl.BandwidthMbps,
			RTTs:          cl.RTTsMs,
			RTTRow:        cl.RTTRowMs,
		}); err != nil {
			return nil, err
		}
	}
	// Surface spec-level problems (missing RTT pairs, uncovered servers)
	// at load time rather than first solve.
	if _, err := c.problem(); err != nil {
		return nil, err
	}
	return c, nil
}
