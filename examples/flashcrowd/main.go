// Flash crowd: a live DVE under churn, driven by the discrete-event
// engine. Clients pour in at a high rate, sessions end, avatars migrate;
// the assignment decays between the periodic re-executions that the paper
// prescribes (§3.4, Table 3). The trace printed here is the dynamic
// version of Table 3's Before / After / Executed columns.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/sim"
	"dvecap/internal/topology"
	"dvecap/internal/xrand"
)

func main() {
	rng := xrand.New(2006)
	g, err := topology.Hier(rng.Split(), topology.DefaultHier())
	if err != nil {
		log.Fatal(err)
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dve.DefaultConfig()
	cfg.Clients = 600 // the flash crowd grows it from here
	world, err := dve.BuildWorld(rng.Split(), cfg, g, dm)
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	driver, err := sim.NewDriver(eng, world, core.GreZGreC,
		core.Options{Overflow: core.SpillLargestResidual},
		sim.ChurnConfig{
			JoinRate:          4.0, // flash crowd: 4 clients/s
			MeanSessionSec:    300,
			MoveRatePerClient: 0.01,
			ReassignEverySec:  60,
		}, rng.Split())
	if err != nil {
		log.Fatal(err)
	}
	driver.Start()
	eng.Run(600) // ten minutes of virtual time

	fmt.Println("time(s)  event           clients   pQoS     R")
	for _, s := range driver.Samples() {
		fmt.Printf("%7.1f  %-14s %7d  %.3f  %.3f\n",
			s.Time, s.Event, s.Clients, s.PQoS, s.Utilization)
	}
	for _, err := range driver.Errors() {
		fmt.Println("driver error:", err)
	}
	fmt.Println()
	fmt.Println("Each pre-reassign row shows the decay accumulated churn causes;")
	fmt.Println("the following post-reassign row shows re-execution restoring pQoS —")
	fmt.Println("the live-system version of the paper's Table 3.")
}
