package experiments

import (
	"fmt"
	"strings"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/metrics"
	"dvecap/internal/runner"
	"dvecap/internal/xrand"
)

// Table3Options tunes the dynamics experiment.
type Table3Options struct {
	// Scenario defaults to the paper's 20s-80z-1000c-500cp.
	Scenario string
	// Join/Leave/Move counts; the paper uses 200 each.
	Join, Leave, Move int
}

// Table3Row is one algorithm's before / after / re-executed pQoS.
type Table3Row struct {
	Algorithm string
	Before    metrics.Summary
	After     metrics.Summary
	Executed  metrics.Summary
}

// Table3Result reproduces "Table 3. pQoS with DVE dynamics": the quality of
// an assignment before churn, right after 200 joins + 200 leaves + 200
// moves hit it, and after re-executing the algorithm (§3.4's prescription).
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the dynamics experiment with δ = 0, as in the paper.
func Table3(setup Setup, opt Table3Options) (*Table3Result, error) {
	setup = setup.withDefaults()
	if opt.Scenario == "" {
		opt.Scenario = "20s-80z-1000c-500cp"
	}
	if opt.Join == 0 && opt.Leave == 0 && opt.Move == 0 {
		opt.Join, opt.Leave, opt.Move = 200, 200, 200
	}
	cfg, err := dve.ParseScenario(dve.DefaultConfig(), opt.Scenario)
	if err != nil {
		return nil, err
	}
	cfg.Correlation = 0 // the paper fixes δ = 0 here
	algos := core.PaperAlgorithms()

	type row map[string][3]float64
	reps, err := runner.Run(setup.Seed, setup.Reps, func(rep int, rng *xrand.RNG) (row, error) {
		world, err := setup.buildWorld(rng.Split(), cfg)
		if err != nil {
			return nil, err
		}
		truth := world.Problem()
		sopt := scratchOpts()

		// Solve every algorithm on the pre-churn world.
		before := make(map[string]*core.Assignment, len(algos))
		out := make(row, len(algos))
		for _, tp := range algos {
			a, err := tp.Solve(rng.Split(), truth, sopt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", tp.Name, err)
			}
			before[tp.Name] = a
		}

		// One shared churn hits all algorithms identically.
		churned := world.Clone()
		churnRng := rng.Split()
		joined := churned.Join(churnRng, opt.Join)
		removed, err := churned.Leave(churnRng, opt.Leave)
		if err != nil {
			return nil, err
		}
		moved, err := churned.Move(churnRng, opt.Move)
		if err != nil {
			return nil, err
		}
		afterTruth := churned.Problem()

		for _, tp := range algos {
			a := before[tp.Name]
			beforeQoS := core.Evaluate(truth, a).PQoS

			adapted := adaptAssignment(a, joined, removed, moved, afterTruth)
			afterQoS := core.Evaluate(afterTruth, adapted).PQoS

			re, err := tp.Solve(rng.Split(), afterTruth, sopt)
			if err != nil {
				return nil, fmt.Errorf("%s re-exec: %w", tp.Name, err)
			}
			execQoS := core.Evaluate(afterTruth, re).PQoS
			out[tp.Name] = [3]float64{beforeQoS, afterQoS, execQoS}
		}
		return out, nil
	})
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}

	res := &Table3Result{}
	for _, tp := range algos {
		r := Table3Row{Algorithm: tp.Name}
		for _, rm := range reps {
			v := rm[tp.Name]
			r.Before.Add(v[0])
			r.After.Add(v[1])
			r.Executed.Add(v[2])
		}
		res.Rows = append(res.Rows, r)
	}
	return res, nil
}

// adaptAssignment carries an assignment across churn without re-running the
// algorithm, the "After" column's semantics: zones keep their servers; a
// surviving unmoved client keeps its contact; joined clients and moved
// clients connect directly to their (new) zone's server, since their old
// refined choice no longer applies.
func adaptAssignment(a *core.Assignment, joined, removed, moved []int, after *core.Problem) *core.Assignment {
	// The churn order was join → leave → move, with `removed` indexes
	// relative to the post-join population and `moved` relative to the
	// post-leave one. Rebuild the contact vector through the same steps.
	contacts := append([]int(nil), a.ClientContact...)
	for range joined {
		contacts = append(contacts, -1) // joined: resolved below against the new zone
	}
	contacts = dve.Compact(contacts, removed)
	for _, j := range moved {
		contacts[j] = -1 // moved: re-resolve against the new zone
	}
	out := &core.Assignment{
		ZoneServer:    append([]int(nil), a.ZoneServer...),
		ClientContact: contacts,
	}
	for j, c := range out.ClientContact {
		if c < 0 {
			out.ClientContact[j] = out.ZoneServer[after.ClientZones[j]]
		}
	}
	return out
}

// String renders the paper's Table 3 layout.
func (r *Table3Result) String() string {
	tb := metrics.NewTable("Time", "Before", "After", "Executed")
	for _, row := range r.Rows {
		tb.AddRow(row.Algorithm,
			fmt.Sprintf("%.2f", row.Before.Mean()),
			fmt.Sprintf("%.2f", row.After.Mean()),
			fmt.Sprintf("%.2f", row.Executed.Mean()))
	}
	var b strings.Builder
	b.WriteString("Table 3: pQoS with DVE dynamics (join/leave/move, δ = 0)\n")
	b.WriteString(tb.String())
	return b.String()
}
