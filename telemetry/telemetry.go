// Package telemetry is dvecap's dependency-free runtime metrics and
// tracing substrate (DESIGN.md §12). A Registry holds counters, gauges and
// fixed-bucket histograms addressed by (name, label set); the record path
// is a handful of atomic operations with zero allocations, so the solver's
// hot loops can be instrumented without perturbing their performance — and
// every instrument is nil-safe, so code built against a metric handle runs
// unchanged (and unmeasured) when no registry is attached.
//
// Instrumentation is observation only: nothing in this package feeds back
// into placement decisions, touches the engine's RNG streams, or orders
// any computation, so runs with telemetry attached stay bit-identical to
// runs without (proven by the worker-determinism and durability
// equivalence suites running under an attached registry).
//
// The registry renders the Prometheus text exposition format (prom.go);
// Tracer (trace.go) is the companion JSON-lines span log.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: observation counts per bucket
// plus a running sum. Buckets are cumulative only at render time; the
// record path increments exactly one bucket counter, the total count and
// the sum — zero allocations, safe for concurrent use, no-op on nil.
type Histogram struct {
	upper  []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket slices are small (≤ ~20) and the branch pattern
	// is friendlier than binary search at that size.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Buckets returns the upper bounds and their CUMULATIVE counts, excluding
// the implicit +Inf bucket (whose cumulative count is Count()).
func (h *Histogram) Buckets() (upper []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	upper = append([]float64(nil), h.upper...)
	cumulative = make([]uint64, len(h.upper))
	var c uint64
	for i := range h.upper {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return upper, cumulative
}

// DefLatencyBuckets is the default latency histogram layout, in seconds:
// 10µs to ~40s in ×4 steps — wide enough to cover a contact switch and a
// 100k-client full re-solve on one scale.
var DefLatencyBuckets = []float64{
	10e-6, 40e-6, 160e-6, 640e-6, 2.56e-3, 10.24e-3, 40.96e-3, 163.84e-3, 655.36e-3, 2.62144, 10.48576, 41.94304,
}

// metricKind discriminates a family's instrument type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (label set, instrument) pair of a family.
type series struct {
	labels labelSet
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name (and therefore a kind).
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry is a set of metric families. Registration methods are safe for
// concurrent use and idempotent: asking again for the same name and label
// set returns the same instrument, so instrumented layers can be composed
// without coordinating ownership. All methods are nil-safe — a nil
// registry hands out nil instruments, whose record methods are no-ops.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// labelSet is a sorted list of label pairs.
type labelSet []labelPair

type labelPair struct{ k, v string }

// newLabelSet validates and sorts alternating key/value pairs.
func newLabelSet(kv []string) (labelSet, error) {
	if len(kv)%2 != 0 {
		return nil, fmt.Errorf("telemetry: odd label list (%d entries)", len(kv))
	}
	ls := make(labelSet, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			return nil, fmt.Errorf("telemetry: invalid label name %q", kv[i])
		}
		ls = append(ls, labelPair{k: kv[i], v: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].k < ls[j].k })
	for i := 1; i < len(ls); i++ {
		if ls[i].k == ls[i-1].k {
			return nil, fmt.Errorf("telemetry: duplicate label %q", ls[i].k)
		}
	}
	return ls, nil
}

func (a labelSet) equal(b labelSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons legal in metric names; we accept them
// for labels too and never emit them there).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup finds or creates the family and the series for (name, labels).
// make is called to build the instrument when the series is new.
func (r *Registry) lookup(name, help string, kind metricKind, kv []string, mk func() *series) *series {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	ls, err := newLabelSet(kv)
	if err != nil {
		panic(err.Error() + " on " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if s.labels.equal(ls) {
			return s
		}
	}
	s := mk()
	s.labels = ls
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. labels are alternating key/value pairs. Nil registry → nil counter.
// Panics on an invalid name, a malformed label list, or a kind conflict
// with an existing family — all programmer errors.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels, func() *series {
		return &series{c: &Counter{}}
	}).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels, func() *series {
		return &series{g: &Gauge{}}
	}).g
}

// Histogram returns the histogram for (name, labels), creating it on
// first use with the given ascending bucket upper bounds (nil takes
// DefLatencyBuckets). The bucket layout is fixed at first registration;
// later calls for the same name ignore the argument.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("telemetry: %s buckets not strictly ascending at %d", name, i))
		}
	}
	return r.lookup(name, help, kindHistogram, labels, func() *series {
		h := &Histogram{upper: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Uint64, len(buckets)+1)
		return &series{h: h}
	}).h
}

// snapshot returns the families sorted by name, each with its series
// sorted by label signature — the stable render order.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, f := range out {
		sort.Slice(f.series, func(i, j int) bool {
			return labelKey(f.series[i].labels) < labelKey(f.series[j].labels)
		})
	}
	return out
}

// labelKey is a series' sort key.
func labelKey(ls labelSet) string {
	s := ""
	for _, p := range ls {
		s += p.k + "\x00" + p.v + "\x00"
	}
	return s
}
