package topology

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
)

// ShortestFrom computes single-source shortest path delays from src using
// Dijkstra's algorithm with a binary heap. Unreachable nodes get +Inf.
func (g *Graph) ShortestFrom(src int) []float64 {
	g.buildAdj()
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{node: src, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue // stale entry
		}
		for _, h := range g.adj[it.node] {
			if nd := it.d + h.w; nd < dist[h.to] {
				dist[h.to] = nd
				heap.Push(pq, distItem{node: h.to, d: nd})
			}
		}
	}
	return dist
}

// AllPairsShortest computes the full n×n one-way delay matrix by running
// Dijkstra from every source in parallel across GOMAXPROCS workers. The
// result is row-major: row s holds delays from source s.
func (g *Graph) AllPairsShortest() [][]float64 {
	g.buildAdj()
	n := g.N()
	out := make([][]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				src := next
				next++
				mu.Unlock()
				if src >= n {
					return
				}
				out[src] = g.ShortestFrom(src)
			}
		}()
	}
	wg.Wait()
	return out
}

type distItem struct {
	node int
	d    float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Eccentricity returns the maximum finite shortest-path delay from src, and
// whether every node was reachable.
func (g *Graph) Eccentricity(src int) (float64, bool) {
	dist := g.ShortestFrom(src)
	maxD, all := 0.0, true
	for _, d := range dist {
		if math.IsInf(d, 1) {
			all = false
			continue
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD, all
}
