package interact

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestSetAddRemove(t *testing.T) {
	g := New(4)
	if old, err := g.Set(0, 1, 2.5); err != nil || old != 0 {
		t.Fatalf("Set: old=%v err=%v", old, err)
	}
	if old, err := g.Set(1, 0, 4); err != nil || old != 2.5 {
		t.Fatalf("Set reverse: old=%v err=%v", old, err)
	}
	if w := g.Weight(0, 1); w != 4 {
		t.Fatalf("Weight = %v, want 4", w)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if old, now, err := g.Add(0, 1, 1); err != nil || old != 4 || now != 5 {
		t.Fatalf("Add: old=%v now=%v err=%v", old, now, err)
	}
	if old, err := g.Set(0, 1, 0); err != nil || old != 5 {
		t.Fatalf("Set 0: old=%v err=%v", old, err)
	}
	if g.NumEdges() != 0 || g.Weight(0, 1) != 0 {
		t.Fatalf("edge not removed: edges=%d w=%v", g.NumEdges(), g.Weight(0, 1))
	}
}

func TestRejectsBadEdges(t *testing.T) {
	g := New(3)
	if _, err := g.Set(0, 0, 1); err == nil {
		t.Fatal("self-edge accepted")
	}
	if _, err := g.Set(0, 3, 1); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := g.Set(0, 1, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, _, err := g.Add(0, 1, 0); err == nil {
		t.Fatal("zero increment accepted")
	}
}

// checkSymmetry verifies both-endpoint storage and sorted rows.
func checkSymmetry(t *testing.T, g *Graph) {
	t.Helper()
	count := 0
	for z := 0; z < g.NumZones(); z++ {
		nbr, wt := g.Row(z)
		for i, y := range nbr {
			if i > 0 && nbr[i-1] >= y {
				t.Fatalf("zone %d row not strictly ascending: %v", z, nbr)
			}
			if w := g.Weight(int(y), z); w != wt[i] {
				t.Fatalf("asymmetric edge (%d,%d): %v vs %v", z, y, wt[i], w)
			}
			if int32(z) < y {
				count++
			}
		}
	}
	if count != g.NumEdges() {
		t.Fatalf("edge count %d, rows hold %d", g.NumEdges(), count)
	}
}

func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(12)
	for step := 0; step < 2000; step++ {
		a, b := rng.Intn(12), rng.Intn(12)
		if a == b {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			if _, err := g.Set(a, b, float64(rng.Intn(5))); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, _, err := g.Add(a, b, rng.Float64()+0.1); err != nil {
				t.Fatal(err)
			}
		case 2:
			if _, err := g.Set(a, b, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkSymmetry(t, g)
}

func TestRemoveZoneSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		g := New(n)
		for e := 0; e < n*2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.Set(a, b, 1+rng.Float64())
			}
		}
		z := rng.Intn(n)
		l := n - 1
		// Expected graph: rebuild with z dropped and l relabeled z.
		want := New(n - 1)
		relabel := func(x int) int {
			if x == l {
				return z
			}
			return x
		}
		for _, e := range g.Edges() {
			if e.A == z || e.B == z {
				continue
			}
			want.Set(relabel(e.A), relabel(e.B), e.W)
		}
		if err := g.RemoveZoneSwap(z); err != nil {
			t.Fatal(err)
		}
		checkSymmetry(t, g)
		if !g.Equal(want) {
			t.Fatalf("trial %d: swap-remove of %d/%d mismatch:\n got %+v\nwant %+v", trial, z, n, g.Edges(), want.Edges())
		}
	}
}

func TestCutWeight(t *testing.T) {
	g := New(4)
	g.Set(0, 1, 2)
	g.Set(1, 2, 3)
	g.Set(2, 3, 5)
	hosts := []int{0, 0, 1, 1}
	if cut := g.CutWeight(hosts); cut != 3 {
		t.Fatalf("cut = %v, want 3", cut)
	}
	if tw := g.TotalWeight(); tw != 10 {
		t.Fatalf("total = %v, want 10", tw)
	}
}

func TestScaleDecay(t *testing.T) {
	g := New(3)
	g.Set(0, 1, 8)
	g.Set(1, 2, 1)
	if err := g.Scale(0.5, 1); err != nil {
		t.Fatal(err)
	}
	if w := g.Weight(0, 1); w != 4 {
		t.Fatalf("scaled weight %v, want 4", w)
	}
	if g.Weight(1, 2) != 0 || g.NumEdges() != 1 {
		t.Fatalf("floor did not drop edge: w=%v edges=%d", g.Weight(1, 2), g.NumEdges())
	}
	checkSymmetry(t, g)
}

func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(9)
	for e := 0; e < 30; e++ {
		a, b := rng.Intn(9), rng.Intn(9)
		if a != b {
			g.Set(a, b, rng.Float64()*10)
		}
	}
	blob, err := json.Marshal(g.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	back, err := FromState(&st)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back.Edges(), g.Edges())
	}
	if back.CutWeight([]int{0, 1, 0, 1, 0, 1, 0, 1, 0}) != g.CutWeight([]int{0, 1, 0, 1, 0, 1, 0, 1, 0}) {
		t.Fatal("cut differs after round-trip")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.Set(0, 1, 2)
	c := g.Clone()
	c.Set(0, 1, 9)
	c.Set(1, 2, 1)
	if g.Weight(0, 1) != 2 || g.NumEdges() != 1 {
		t.Fatal("clone aliases parent")
	}
	if !g.Clone().Equal(g) {
		t.Fatal("clone not equal")
	}
}
