package core

// Diff quantifies the operational cost of moving from one assignment to
// another: every difference is a disruption someone pays for — a zone
// handoff migrates that zone's authoritative state between servers, a
// target change re-routes a client's session, a contact change forces a
// reconnect. The paper's §3.4 re-execution prescription implicitly assumes
// these costs are acceptable; Diff (and the staleness experiment built on
// it) makes them measurable.
type DiffResult struct {
	// ZoneMoves counts zones whose hosting server changed.
	ZoneMoves int
	// TargetMoves counts clients whose target server changed (a superset
	// effect of zone moves, weighted by zone population).
	TargetMoves int
	// ContactMoves counts clients whose contact server changed.
	ContactMoves int
	// MigratedRT is the summed R^T bandwidth of clients whose target
	// changed — a proxy for the state-transfer volume of the handoff.
	MigratedRT float64
}

// Diff compares two assignments over the same problem. Both must be valid
// for p (same zone and client counts).
func Diff(p *Problem, from, to *Assignment) DiffResult {
	var d DiffResult
	for z := range from.ZoneServer {
		if from.ZoneServer[z] != to.ZoneServer[z] {
			d.ZoneMoves++
		}
	}
	for j, z := range p.ClientZones {
		if from.ZoneServer[z] != to.ZoneServer[z] {
			d.TargetMoves++
			d.MigratedRT += p.ClientRT[j]
		}
		if from.ClientContact[j] != to.ClientContact[j] {
			d.ContactMoves++
		}
	}
	return d
}
