package director

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// Client is the Go binding for the director's HTTP API.
type Client struct {
	// BaseURL is the director's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a binding for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Join registers a client.
func (c *Client) Join(id string, node, zone int) (ClientInfo, error) {
	var out ClientInfo
	err := c.do(http.MethodPost, "/v1/clients", map[string]interface{}{
		"id": id, "node": node, "zone": zone,
	}, &out)
	return out, err
}

// Leave removes a client.
func (c *Client) Leave(id string) error {
	return c.do(http.MethodDelete, "/v1/clients/"+id, nil, nil)
}

// Move relocates a client to another zone.
func (c *Client) Move(id string, zone int) (ClientInfo, error) {
	var out ClientInfo
	err := c.do(http.MethodPost, "/v1/clients/"+id+"/move", map[string]interface{}{"zone": zone}, &out)
	return out, err
}

// UpdateDelays streams freshly measured RTTs (one entry per server, in
// server order; ms) into the director, which repairs incrementally around
// the client's zone.
func (c *Client) UpdateDelays(id string, rttsMs []float64) (ClientInfo, error) {
	var out ClientInfo
	err := c.do(http.MethodPost, "/v1/clients/"+id+"/delays", map[string]interface{}{"rtts_ms": rttsMs}, &out)
	return out, err
}

// Lookup fetches a client's current assignment.
func (c *Client) Lookup(id string) (ClientInfo, error) {
	var out ClientInfo
	err := c.do(http.MethodGet, "/v1/clients/"+id, nil, &out)
	return out, err
}

// Servers lists the deployment's servers with load, capacity, hosted
// zone count and drain status.
func (c *Client) Servers() ([]ServerInfo, error) {
	var out []ServerInfo
	err := c.do(http.MethodGet, "/v1/servers", nil, &out)
	return out, err
}

// AddServer brings a new server online at a topology node.
func (c *Client) AddServer(node int, capacityMbps float64) (ServerInfo, error) {
	var out ServerInfo
	err := c.do(http.MethodPost, "/v1/servers", map[string]interface{}{
		"node": node, "capacity_mbps": capacityMbps,
	}, &out)
	return out, err
}

// RemoveServer retires an empty server (drain it first). Indices
// renumber: the last server takes the removed one's index.
func (c *Client) RemoveServer(i int) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/v1/servers/%d", i), nil, nil)
}

// DrainServer evacuates a server for a rolling deploy.
func (c *Client) DrainServer(i int) (ServerInfo, error) {
	var out ServerInfo
	err := c.do(http.MethodPost, fmt.Sprintf("/v1/servers/%d/drain", i), nil, &out)
	return out, err
}

// UncordonServer returns a drained server to service.
func (c *Client) UncordonServer(i int) (ServerInfo, error) {
	var out ServerInfo
	err := c.do(http.MethodPost, fmt.Sprintf("/v1/servers/%d/uncordon", i), nil, &out)
	return out, err
}

// Zones lists the virtual world's zones with hosting server and
// population.
func (c *Client) Zones() ([]ZoneInfo, error) {
	var out []ZoneInfo
	err := c.do(http.MethodGet, "/v1/zones", nil, &out)
	return out, err
}

// AddZone grows the virtual world by one empty zone.
func (c *Client) AddZone() (ZoneInfo, error) {
	var out ZoneInfo
	err := c.do(http.MethodPost, "/v1/zones", nil, &out)
	return out, err
}

// RetireZone removes an empty zone. Indices renumber: the last zone takes
// the retired one's index.
func (c *Client) RetireZone(z int) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/v1/zones/%d", z), nil, nil)
}

// Adjacency lists the zone-interaction graph's edges in canonical order.
func (c *Client) Adjacency() ([]AdjacencyInfo, error) {
	var out []AdjacencyInfo
	err := c.do(http.MethodGet, "/v1/adjacency", nil, &out)
	return out, err
}

// SetAdjacency installs (or, with weight 0, removes) an interaction edge
// at an absolute weight.
func (c *Client) SetAdjacency(zone1, zone2 int, weightMbps float64) (AdjacencyInfo, error) {
	var out AdjacencyInfo
	err := c.do(http.MethodPost, "/v1/adjacency", map[string]interface{}{
		"zone1": zone1, "zone2": zone2, "weight_mbps": weightMbps,
	}, &out)
	return out, err
}

// AddAdjacencyWeight accumulates an observed crossing's weight onto an
// interaction edge.
func (c *Client) AddAdjacencyWeight(zone1, zone2 int, deltaMbps float64) (AdjacencyInfo, error) {
	var out AdjacencyInfo
	err := c.do(http.MethodPost, "/v1/adjacency/add", map[string]interface{}{
		"zone1": zone1, "zone2": zone2, "delta_mbps": deltaMbps,
	}, &out)
	return out, err
}

// Reassign triggers a full re-execution of the assignment algorithm.
func (c *Client) Reassign() (ReassignResult, error) {
	var out ReassignResult
	err := c.do(http.MethodPost, "/v1/reassign", nil, &out)
	return out, err
}

// Checkpoint snapshots a durable director's state and truncates its
// journal, bounding the next recovery's replay.
func (c *Client) Checkpoint() (CheckpointResult, error) {
	var out CheckpointResult
	err := c.do(http.MethodPost, "/v1/checkpoint", nil, &out)
	return out, err
}

// Stats fetches current quality metrics.
func (c *Client) Stats() (Stats, error) {
	var out Stats
	err := c.do(http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Snapshot lists all registered clients.
func (c *Client) Snapshot() ([]ClientInfo, error) {
	var out []ClientInfo
	err := c.do(http.MethodGet, "/v1/clients", nil, &out)
	return out, err
}

func (c *Client) do(method, path string, body interface{}, out interface{}) error {
	var rdr *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(raw)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rdr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("director: %s %s: %s (HTTP %d)", method, path, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("director: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
