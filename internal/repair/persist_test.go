package repair

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"dvecap/internal/xrand"
)

// churnDriver drives an ID-addressed mixed workload — client churn,
// batches, delay refreshes, drain/uncordon cycles — deterministically from
// its RNG. Two drivers with equal RNG state and equal live lists issue the
// same logical event sequence, which is how the round-trip tests compare a
// recovered planner against the live one it was captured from.
type churnDriver struct {
	rng  *xrand.RNG
	live []string
	next int
}

func (d *churnDriver) clone(rng *xrand.RNG) *churnDriver {
	return &churnDriver{rng: rng, live: append([]string(nil), d.live...), next: d.next}
}

func (d *churnDriver) freshID() string {
	id := fmt.Sprintf("c%04d", d.next)
	d.next++
	return id
}

func (d *churnDriver) run(t *testing.T, b *IDBinding, events int) {
	t.Helper()
	pl := b.Planner()
	m, n := pl.NumServers(), pl.NumZones()
	for e := 0; e < events; e++ {
		r := d.rng.Float64()
		switch {
		case len(d.live) == 0 || r < 0.28:
			id := d.freshID()
			if err := b.Join(id, d.rng.IntN(n), d.rng.Uniform(0.1, 0.6), randRow(d.rng, m)); err != nil {
				t.Fatalf("event %d join: %v", e, err)
			}
			d.live = append(d.live, id)
		case r < 0.36:
			cnt := d.rng.IntRange(2, 5)
			ids := make([]string, cnt)
			zones := make([]int, cnt)
			rts := make([]float64, cnt)
			css := make([][]float64, cnt)
			for x := range ids {
				ids[x] = d.freshID()
				zones[x] = d.rng.IntN(n)
				rts[x] = d.rng.Uniform(0.1, 0.6)
				css[x] = randRow(d.rng, m)
			}
			if err := b.JoinBatch(ids, zones, rts, css); err != nil {
				t.Fatalf("event %d join batch: %v", e, err)
			}
			d.live = append(d.live, ids...)
		case r < 0.52:
			x := d.rng.IntN(len(d.live))
			if err := b.Leave(d.live[x]); err != nil {
				t.Fatalf("event %d leave: %v", e, err)
			}
			d.live = append(d.live[:x], d.live[x+1:]...)
		case r < 0.60 && len(d.live) >= 4:
			cnt := d.rng.IntRange(2, 4)
			picks := d.rng.SampleWithout(len(d.live), cnt)
			ids := make([]string, cnt)
			gone := make(map[string]bool, cnt)
			for x, i := range picks {
				ids[x] = d.live[i]
				gone[ids[x]] = true
			}
			if err := b.LeaveBatch(ids); err != nil {
				t.Fatalf("event %d leave batch: %v", e, err)
			}
			kept := d.live[:0]
			for _, id := range d.live {
				if !gone[id] {
					kept = append(kept, id)
				}
			}
			d.live = kept
		case r < 0.74:
			if err := b.Move(d.live[d.rng.IntN(len(d.live))], d.rng.IntN(n)); err != nil {
				t.Fatalf("event %d move: %v", e, err)
			}
		case r < 0.82 && len(d.live) >= 4:
			cnt := d.rng.IntRange(2, 4)
			picks := d.rng.SampleWithout(len(d.live), cnt)
			ids := make([]string, cnt)
			zones := make([]int, cnt)
			for x, i := range picks {
				ids[x] = d.live[i]
				zones[x] = d.rng.IntN(n)
			}
			if err := b.MoveBatch(ids, zones); err != nil {
				t.Fatalf("event %d move batch: %v", e, err)
			}
		case r < 0.94:
			id := d.live[d.rng.IntN(len(d.live))]
			if err := b.UpdateDelays(id, randRow(d.rng, m)); err != nil {
				t.Fatalf("event %d delays: %v", e, err)
			}
		default:
			sid := b.ServerID(d.rng.IntN(m))
			if draining, _ := b.Draining(sid); draining {
				if err := b.UncordonServer(sid); err != nil {
					t.Fatalf("event %d uncordon: %v", e, err)
				}
			} else if pl.availableServers() > 1 {
				if err := b.DrainServer(sid); err != nil {
					t.Fatalf("event %d drain: %v", e, err)
				}
			}
		}
	}
}

// bindPlanner wraps a fresh planner in an IDBinding with synthetic client,
// server and zone IDs (clients named by handle in initial problem order).
func bindPlanner(t *testing.T, pl *Planner) *IDBinding {
	t.Helper()
	ids := make([]string, pl.NumClients())
	for j := range ids {
		ids[j] = fmt.Sprintf("seed%03d", j)
	}
	b, err := NewIDBinding(pl, ids)
	if err != nil {
		t.Fatal(err)
	}
	sids := make([]string, pl.NumServers())
	for i := range sids {
		sids[i] = fmt.Sprintf("s%d", i)
	}
	zids := make([]string, pl.NumZones())
	for z := range zids {
		zids[z] = fmt.Sprintf("z%d", z)
	}
	if err := b.NameTopology(sids, zids); err != nil {
		t.Fatal(err)
	}
	return b
}

// denseIDs lists the binding's client IDs in the planner's current dense
// order — the order a snapshot stores them in.
func denseIDs(t *testing.T, b *IDBinding) []string {
	t.Helper()
	out := make([]string, b.Planner().NumClients())
	for _, id := range b.IDs() {
		j, err := b.denseIndex(id)
		if err != nil {
			t.Fatal(err)
		}
		out[j] = id
	}
	return out
}

func requireSamePlanner(t *testing.T, a, b *IDBinding) {
	t.Helper()
	sa, err := a.Planner().ExportState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Planner().ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("planner states diverged:\n%+v\nvs\n%+v", sa, sb)
	}
	for _, id := range a.IDs() {
		ca, err := a.Contact(id)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.Contact(id)
		if err != nil {
			t.Fatalf("client %q missing after recovery: %v", id, err)
		}
		da, _ := a.Delay(id)
		db, _ := b.Delay(id)
		za, _ := a.Zone(id)
		zb, _ := b.Zone(id)
		if ca != cb || da != db || za != zb {
			t.Fatalf("client %q diverged: contact %d/%d delay %v/%v zone %d/%d", id, ca, cb, da, db, za, zb)
		}
	}
}

// TestPlannerStateRoundTrip is the repair-layer half of the durability
// guarantee: ExportState → JSON → NewFromState + RestoreIDBinding yields a
// planner whose state is deeply equal to the live one AND whose further
// trajectory under identical churn — including drift-guard and imbalance-
// guard full solves drawing from the restored RNG — stays bit-identical.
func TestPlannerStateRoundTrip(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 8; trial++ {
		p := randProblem(rng.Split(), 400)
		cfg := testConfig()
		cfg.DriftPQoS = 0.03
		cfg.DriftUtilSpread = 0.15
		if trial%2 == 1 {
			cfg.Opt.Workers = 4
		}
		pl, err := New(cfg, p, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		live := bindPlanner(t, pl)
		drv := &churnDriver{rng: rng.Split()}
		drv.run(t, live, 120)

		st, err := pl.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back State
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		pl2, err := NewFromState(cfg, pl.Problem().Clone(), &back)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := RestoreIDBinding(pl2, denseIDs(t, live),
			append([]string(nil), live.ServerNames()...),
			append([]string(nil), live.ZoneNames()...))
		if err != nil {
			t.Fatal(err)
		}
		requireSamePlanner(t, live, restored)

		// Identical further churn, identical trajectories — solver epochs,
		// guard counters, every contact.
		seed := rng.Split().Seed()
		d1 := drv.clone(xrand.New(seed))
		d2 := drv.clone(xrand.New(seed))
		d1.run(t, live, 120)
		d2.run(t, restored, 120)
		requireSamePlanner(t, live, restored)
		// checkPlanner's from-scratch comparison assumes no cordons; lift
		// any still-active drains (identically on both) first.
		for i := 0; i < pl.NumServers(); i++ {
			if err := pl.UncordonServer(i); err != nil {
				t.Fatal(err)
			}
			if err := pl2.UncordonServer(i); err != nil {
				t.Fatal(err)
			}
		}
		requireSamePlanner(t, live, restored)
		checkPlanner(t, pl2)
	}
}

// TestNewFromStateRejectsCorruptState exercises validation: recovery must
// refuse impossible snapshots instead of installing them.
func TestNewFromStateRejectsCorruptState(t *testing.T) {
	rng := xrand.New(5)
	p := randProblem(rng.Split(), 10)
	pl, err := New(testConfig(), p, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	good, err := pl.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *State {
		raw, _ := json.Marshal(good)
		var st State
		_ = json.Unmarshal(raw, &st)
		return &st
	}

	st := fresh()
	st.ClientContact = st.ClientContact[:1]
	if _, err := NewFromState(testConfig(), p.Clone(), st); err == nil {
		t.Fatal("truncated contacts accepted")
	}
	st = fresh()
	st.Eval = nil
	if _, err := NewFromState(testConfig(), p.Clone(), st); err == nil {
		t.Fatal("missing evaluator sidecar accepted")
	}
	st = fresh()
	st.Drained = st.Drained[:1]
	if _, err := NewFromState(testConfig(), p.Clone(), st); err == nil {
		t.Fatal("truncated drain flags accepted")
	}
	st = fresh()
	st.Eval.Loads = st.Eval.Loads[:1]
	if _, err := NewFromState(testConfig(), p.Clone(), st); err == nil {
		t.Fatal("corrupt evaluator state accepted")
	}
	if _, err := NewFromState(testConfig(), p.Clone(), fresh()); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

// TestBatchLeaveMove covers the batch event surface: preconditions reject
// the whole batch, successful batches apply atomically with single-event
// accounting, and two identically driven planners agree.
func TestBatchLeaveMove(t *testing.T) {
	rng := xrand.New(77)
	p := randProblem(rng.Split(), 50)
	pl, err := New(testConfig(), p, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	b := bindPlanner(t, pl)
	ids := append([]string(nil), b.IDs()...)
	if len(ids) < 2 {
		t.Skip("problem too small")
	}

	before := pl.Stats()
	// Invalid batches: unknown member, duplicate member — nothing applies.
	if err := b.LeaveBatch([]string{ids[0], "ghost"}); err == nil {
		t.Fatal("leave batch with unknown client accepted")
	}
	if err := b.LeaveBatch([]string{ids[0], ids[0]}); err == nil {
		t.Fatal("leave batch with duplicate accepted")
	}
	if err := b.MoveBatch([]string{ids[0], ids[1]}, []int{0}); err == nil {
		t.Fatal("move batch with length mismatch accepted")
	}
	if err := b.MoveBatch([]string{ids[0]}, []int{pl.NumZones()}); err == nil {
		t.Fatal("move batch with bad zone accepted")
	}
	if got := pl.Stats(); got != before {
		t.Fatalf("rejected batches mutated stats: %+v vs %+v", got, before)
	}
	if _, err := b.Contact(ids[0]); err != nil {
		t.Fatalf("client %q lost by rejected batch: %v", ids[0], err)
	}

	// A successful move batch counts its size once.
	zones := make([]int, 2)
	for x := range zones {
		zones[x] = rng.IntN(pl.NumZones())
	}
	if err := b.MoveBatch(ids[:2], zones); err != nil {
		t.Fatal(err)
	}
	after := pl.Stats()
	if after.Moves != before.Moves+2 || after.Events != before.Events+2 {
		t.Fatalf("move batch accounting: moves %d→%d events %d→%d", before.Moves, after.Moves, before.Events, after.Events)
	}
	for x, id := range ids[:2] {
		z, err := b.Zone(id)
		if err != nil {
			t.Fatal(err)
		}
		if z != zones[x] {
			t.Fatalf("client %q in zone %d, batch sent it to %d", id, z, zones[x])
		}
	}

	// A successful leave batch removes exactly its members.
	if err := b.LeaveBatch(ids[:2]); err != nil {
		t.Fatal(err)
	}
	final := pl.Stats()
	if final.Leaves != after.Leaves+2 || final.Events != after.Events+2 {
		t.Fatalf("leave batch accounting: leaves %d→%d events %d→%d", after.Leaves, final.Leaves, after.Events, final.Events)
	}
	for _, id := range ids[:2] {
		if _, err := b.Contact(id); err == nil {
			t.Fatalf("client %q still present after leave batch", id)
		}
	}
	if got, want := b.Len(), len(ids)-2; got != want {
		t.Fatalf("population %d, want %d", got, want)
	}
	checkPlanner(t, pl)
}

// TestImbalanceGuard: with the pQoS guard disarmed and the spread guard
// armed at a hair trigger, churn fires full solves counted as imbalance
// solves; with the spread guard disarmed too, none fire.
func TestImbalanceGuard(t *testing.T) {
	run := func(spread float64) Stats {
		rng := xrand.New(99)
		p := randProblem(rng.Split(), 300)
		cfg := testConfig()
		cfg.DriftUtilSpread = spread
		pl, err := New(cfg, p, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		b := bindPlanner(t, pl)
		drv := &churnDriver{rng: rng.Split()}
		drv.run(t, b, 150)
		return pl.Stats()
	}
	armed := run(1e-9)
	if armed.ImbalanceSolves == 0 {
		t.Fatalf("hair-trigger spread guard never fired: %+v", armed)
	}
	if armed.FullSolves < armed.ImbalanceSolves+1 {
		t.Fatalf("imbalance solves %d not reflected in full solves %d", armed.ImbalanceSolves, armed.FullSolves)
	}
	disarmed := run(0)
	if disarmed.ImbalanceSolves != 0 || disarmed.FullSolves != 1 {
		t.Fatalf("disarmed guard fired: %+v", disarmed)
	}
	if disarmed.LastUtilSpread <= 0 {
		t.Fatalf("spread telemetry missing: %+v", disarmed)
	}
}

// TestEventCodecRoundTrip pins the canonical encoding: every field
// round-trips, empty ops are rejected on both sides.
func TestEventCodecRoundTrip(t *testing.T) {
	ev := &Event{
		Op: OpAddServer, ID: "c1", IDs: []string{"a", "b"},
		Zone: "z1", Zones: []string{"z1", "z2"}, ZoneIdx: 3, ZoneIdxs: []int{0, 2},
		Server: "s1", ServerIdx: 1, Host: "s0",
		RT: 0.25, RTs: []float64{0.1, 0.2}, Row: []float64{1, 2},
		Rows: [][]float64{{1}, {2}}, RTTs: map[string]float64{"c9": 30},
		ClientRTTs: map[string]float64{"c2": 12.5}, Capacity: 80,
		Node: 2, Auto: true, FullSolves: 7,
	}
	raw, err := ev.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEvent(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev, back) {
		t.Fatalf("codec round trip diverged:\n%+v\nvs\n%+v", ev, back)
	}
	if _, err := (&Event{}).Encode(); err == nil {
		t.Fatal("empty op encoded")
	}
	if _, err := DecodeEvent([]byte(`{}`)); err == nil {
		t.Fatal("empty op decoded")
	}
	if _, err := DecodeEvent([]byte(`not json`)); err == nil {
		t.Fatal("junk decoded")
	}
}
