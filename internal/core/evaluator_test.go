package core

import (
	"math"
	"testing"

	"dvecap/internal/xrand"
)

// evalTol compares incrementally-maintained floats against full
// re-summation: drift is rounding-only, so a tight relative bound holds.
func evalClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-7*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// checkEvaluatorState asserts every piece of the evaluator's derived state
// against a from-scratch computation on its current assignment.
func checkEvaluatorState(t *testing.T, p *Problem, ev *Evaluator) {
	t.Helper()
	a := ev.Assignment()
	want := evaluateScoreOracle(p, a)
	if ev.WithQoS() != want.withQoS {
		t.Fatalf("withQoS = %d, full evaluation gives %d", ev.WithQoS(), want.withQoS)
	}
	if !evalClose(ev.RAPCost(), want.rapCost) {
		t.Fatalf("rapCost = %v, full evaluation gives %v", ev.RAPCost(), want.rapCost)
	}
	if !evalClose(ev.TotalLoad(), want.load) {
		t.Fatalf("totalLoad = %v, full evaluation gives %v", ev.TotalLoad(), want.load)
	}
	for j := 0; j < p.NumClients(); j++ {
		if d := a.ClientDelay(p, j); ev.ClientDelay(j) != d {
			t.Fatalf("client %d delay = %v, want %v", j, ev.ClientDelay(j), d)
		}
	}
	loads := a.ServerLoads(p)
	for i := range loads {
		if !evalClose(ev.ServerLoad(i), loads[i]) {
			t.Fatalf("server %d load = %v, want %v", i, ev.ServerLoad(i), loads[i])
		}
	}
}

// TestEvaluatorMatchesFullEvaluation drives the evaluator through long
// randomized move sequences — zone moves and contact switches, including
// capacity-violating ones on tight (spill/overload) instances — and checks
// the incremental state against full re-evaluation after every move.
func TestEvaluatorMatchesFullEvaluation(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := xrand.New(uint64(1000 + trial))
		tight := trial%2 == 0
		p := randomProblem(rng.Split(), tight)
		a, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ev := NewEvaluator(p, a)
		checkEvaluatorState(t, p, ev)
		m := p.NumServers()
		for step := 0; step < 60; step++ {
			if rng.IntN(2) == 0 {
				z := rng.IntN(p.NumZones)
				s := rng.IntN(m)
				want := ev.zoneMoveScore(z, s)
				ev.ApplyZoneMove(z, s)
				if s != ev.zoneServer[z] {
					t.Fatalf("zone move not applied")
				}
				got := ev.score()
				if got.withQoS != want.withQoS || !evalClose(got.rapCost, want.rapCost) || !evalClose(got.load, want.load) {
					t.Fatalf("trial %d step %d: zoneMoveScore predicted %+v, apply gave %+v",
						trial, step, want, got)
				}
			} else {
				j := rng.IntN(p.NumClients())
				ev.ApplyContactSwitch(j, rng.IntN(m))
			}
			checkEvaluatorState(t, p, ev)
		}
	}
}

// TestEvaluatorReset proves a reused evaluator is indistinguishable from a
// fresh one across problems of different shapes.
func TestEvaluatorReset(t *testing.T) {
	ev := &Evaluator{}
	for trial := 0; trial < 20; trial++ {
		rng := xrand.New(uint64(7000 + trial))
		p := randomProblem(rng.Split(), trial%3 == 0)
		a, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ev.Reset(p, a)
		fresh := NewEvaluator(p, a)
		if ev.WithQoS() != fresh.WithQoS() || ev.RAPCost() != fresh.RAPCost() || ev.TotalLoad() != fresh.TotalLoad() {
			t.Fatalf("trial %d: reused evaluator differs from fresh", trial)
		}
		checkEvaluatorState(t, p, ev)
		ev.LocalSearch(2)
		checkEvaluatorState(t, p, ev)
	}
}

// TestLocalSearchMatchesOracle proves move-for-move equivalence of the
// incremental local search with the retained clone-and-rescore oracle: for
// every round budget the two accept the same moves, so the assignments —
// zone hosting and client contacts — are identical, on generous and tight
// (spilled, overloaded) instances alike.
func TestLocalSearchMatchesOracle(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := xrand.New(uint64(4000 + trial))
		tight := trial%2 == 1
		p := randomProblem(rng.Split(), tight)
		start, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, rounds := range []int{1, 2, 4} {
			got := LocalSearch(p, start, rounds)
			want := localSearchOracle(p, start, rounds)
			for z := range want.ZoneServer {
				if got.ZoneServer[z] != want.ZoneServer[z] {
					t.Fatalf("trial %d rounds %d: zone %d hosted on %d, oracle %d",
						trial, rounds, z, got.ZoneServer[z], want.ZoneServer[z])
				}
			}
			for j := range want.ClientContact {
				if got.ClientContact[j] != want.ClientContact[j] {
					t.Fatalf("trial %d rounds %d: client %d contact %d, oracle %d",
						trial, rounds, j, got.ClientContact[j], want.ClientContact[j])
				}
			}
		}
	}
}

// TestLocalSearchOracleNeverWorsens keeps the oracle itself honest.
func TestLocalSearchOracleNeverWorsens(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := xrand.New(uint64(9000 + trial))
		p := randomProblem(rng.Split(), false)
		a, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		improved := localSearchOracle(p, a, 3)
		if TotalCost(p, improved) < TotalCost(p, a) {
			t.Fatalf("trial %d: oracle worsened QoS", trial)
		}
	}
}

// TestWorkspaceReuseMatchesFresh proves that solving with a reused
// Workspace yields bit-identical assignments to scratch-free solving, and
// that Workspace.EvaluateInto matches Evaluate.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	ws := NewWorkspace()
	var reusedMetrics Metrics
	for trial := 0; trial < 30; trial++ {
		rng := xrand.New(uint64(5000 + trial))
		p := randomProblem(rng.Split(), trial%2 == 0)
		for ti, tp := range []TwoPhase{GreZGreC, DynZGreC, RanZGreC, GreZVirC, RanZVirC} {
			solveSeed := uint64(5000*trial + ti)
			plain, err1 := tp.Solve(xrand.New(solveSeed), p, Options{Overflow: SpillLargestResidual})
			reused, err2 := tp.Solve(xrand.New(solveSeed), p, Options{Overflow: SpillLargestResidual, Scratch: ws})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d %s: error mismatch %v vs %v", trial, tp.Name, err1, err2)
			}
			if err1 != nil {
				continue
			}
			d := Diff(p, plain, reused)
			if d.ZoneMoves != 0 || d.ContactMoves != 0 {
				t.Fatalf("trial %d %s: workspace-reusing solve differs: %+v", trial, tp.Name, d)
			}
			want := Evaluate(p, plain)
			ws.EvaluateInto(p, reused, &reusedMetrics)
			if want.WithQoS != reusedMetrics.WithQoS || want.PQoS != reusedMetrics.PQoS ||
				!evalClose(want.Utilization, reusedMetrics.Utilization) ||
				!evalClose(want.MaxLoadRatio, reusedMetrics.MaxLoadRatio) {
				t.Fatalf("trial %d %s: EvaluateInto differs from Evaluate", trial, tp.Name)
			}
		}
	}
}
