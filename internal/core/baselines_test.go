package core

import (
	"errors"
	"math"
	"testing"

	"dvecap/internal/xrand"
)

func TestLoadZBalancesLoad(t *testing.T) {
	// Four equal zones, two equal servers → perfect 2/2 split.
	p := &Problem{
		ServerCaps:  []float64{10, 10},
		ClientZones: []int{0, 1, 2, 3},
		NumZones:    4,
		ClientRT:    []float64{1, 1, 1, 1},
		CS:          [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}},
		SS:          [][]float64{{0, 1}, {1, 0}},
		D:           100,
	}
	target, err := LoadZ(nil, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, s := range target {
		counts[s]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("unbalanced split: %v", target)
	}
}

func TestLoadZIgnoresDelays(t *testing.T) {
	// Two servers, one has terrible delays to everyone; LoadZ must still
	// balance across both (that is its defining flaw).
	p := tinyProblem()
	for j := range p.CS {
		p.CS[j][1] = 500 // server 1 unusable delay-wise
	}
	target, err := LoadZ(nil, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, s := range target {
		used[s] = true
	}
	if !used[0] || !used[1] {
		t.Fatalf("LoadZ should balance blindly, got %v", target)
	}
}

func TestLoadZInfeasiblePolicy(t *testing.T) {
	p := tinyProblem()
	p.ServerCaps = []float64{0.5, 0.5}
	if _, err := LoadZ(nil, p, Options{Overflow: ErrorOnOverflow}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := LoadZ(nil, p, Options{Overflow: SpillLargestResidual}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadZLargestZoneFirst(t *testing.T) {
	// One big zone (RT 8) and two small (RT 1 each); caps 9 and 3.
	// LPT: big → s0 (residual 9), then smalls → s1(3), s1? residual after
	// first small: s1=2 vs s0=1 → second small also s1.
	p := &Problem{
		ServerCaps:  []float64{9, 3},
		ClientZones: []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 2},
		NumZones:    3,
		ClientRT:    []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		CS:          make([][]float64, 10),
		SS:          [][]float64{{0, 1}, {1, 0}},
		D:           100,
	}
	for j := range p.CS {
		p.CS[j] = []float64{1, 1}
	}
	target, err := LoadZ(nil, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if target[0] != 0 {
		t.Fatalf("big zone on %d, want 0", target[0])
	}
	if target[1] != 1 || target[2] != 1 {
		t.Fatalf("small zones = %v, want both on 1", target[1:])
	}
}

func TestNearCPicksNearestFeasible(t *testing.T) {
	p := forwardingProblem()
	// c1: nearest server is s1 (30ms) — NearC picks it even though with
	// forwarding (30+60=90) it happens to also meet the bound here.
	contact, err := NearC(nil, p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if contact[0] != 0 || contact[1] != 1 {
		t.Fatalf("contact = %v, want [0 1]", contact)
	}
}

func TestNearCCanHurtWhenDetourIsLong(t *testing.T) {
	// Client is 240ms from its target (within D=250) but 200ms from
	// another server whose onward hop is 200ms: NearC reroutes to the
	// nearer ping and loses QoS; VirC keeps it direct and within bound.
	p := &Problem{
		ServerCaps:  []float64{10, 10},
		ClientZones: []int{0},
		NumZones:    1,
		ClientRT:    []float64{1},
		CS:          [][]float64{{240, 200}},
		SS:          [][]float64{{0, 200}, {200, 0}},
		D:           250,
	}
	contact, err := NearC(nil, p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &Assignment{ZoneServer: []int{0}, ClientContact: contact}
	if contact[0] != 1 {
		t.Fatalf("contact = %v, want the nearer server 1", contact)
	}
	if a.HasQoS(p, 0) {
		t.Fatal("detour should have broken QoS — the baseline's defining flaw")
	}
	vc, _ := VirC(nil, p, []int{0}, Options{})
	av := &Assignment{ZoneServer: []int{0}, ClientContact: vc}
	if !av.HasQoS(p, 0) {
		t.Fatal("VirC should have kept QoS")
	}
}

func TestNearCRespectsCapacity(t *testing.T) {
	p := forwardingProblem()
	p.ServerCaps = []float64{10, 1} // no room for 2×RT on s1
	contact, err := NearC(nil, p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if contact[1] != 0 {
		t.Fatalf("contact = %v, want target fallback", contact[1])
	}
}

func TestBaselineCombosRegistered(t *testing.T) {
	for _, name := range []string{"LoadZ-VirC", "LoadZ-GreC", "GreZ-NearC"} {
		if _, ok := ByName(name); !ok {
			t.Fatalf("%s not registered", name)
		}
	}
	if len(BaselineAlgorithms()) != 5 {
		t.Fatalf("baseline set = %d", len(BaselineAlgorithms()))
	}
}

func TestBaselinesSolveRandomProblems(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(rng.Split(), trial%2 == 0)
		for _, tp := range BaselineAlgorithms() {
			a, err := tp.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
			if err != nil {
				t.Fatalf("%s: %v", tp.Name, err)
			}
			m := Evaluate(p, a)
			if m.PQoS < 0 || m.PQoS > 1 || math.IsNaN(m.Utilization) {
				t.Fatalf("%s: bad metrics %+v", tp.Name, m)
			}
		}
	}
}

func TestGreZBeatsLoadZOnDelaySensitiveInstances(t *testing.T) {
	// On the tiny instance the delay-aware GreZ finds the zero-cost
	// assignment; blind balancing may or may not, but it can never beat it.
	p := tinyProblem()
	gz, _ := GreZ(nil, p, Options{})
	lz, _ := LoadZ(nil, p, Options{})
	if IAPCost(p, gz) > IAPCost(p, lz) {
		t.Fatalf("GreZ (%d) worse than LoadZ (%d)", IAPCost(p, gz), IAPCost(p, lz))
	}
}
