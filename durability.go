package dvecap

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"dvecap/internal/core"
	"dvecap/internal/interact"
	"dvecap/internal/repair"
	"dvecap/internal/wal"
	"dvecap/telemetry"
)

// ErrSessionClosed reports an event on a durable session after Close.
var ErrSessionClosed = errors.New("dvecap: session closed")

const (
	// snapshotVersion tags the sessionSnapshot schema; recovery rejects
	// snapshots from a future schema rather than misreading them, and
	// still reads every older version. Version 2 added the delay-provider
	// state (version-1 snapshots are always dense and carry per-client
	// rows instead).
	snapshotVersion = 2
	// keepSnapshots is how many generations Checkpoint retains: the one it
	// just wrote plus one predecessor, so a snapshot that turns out
	// unreadable (torn by a crash-during-rename bug, bitrot) still leaves a
	// recovery point with its log tail intact.
	keepSnapshots = 2
)

// sessionSnapshot is one durable checkpoint of a ClusterSession: the full
// cluster spec (the normalized WriteClusterJSON form), the planner sidecar
// (assignment, evaluator accumulators, guard counters, RNG position) and
// the trajectory-shaping config. Everything a placement decision depends
// on is in here; knobs that only affect throughput (worker count) or
// durability housekeeping (checkpoint cadence) stay with the caller.
type sessionSnapshot struct {
	Version         int            `json:"version"`
	LSN             uint64         `json:"lsn"`
	Algo            string         `json:"algo"`
	Overflow        OverflowPolicy `json:"overflow"`
	DriftPQoS       float64        `json:"drift_pqos,omitempty"`
	DriftUtilSpread float64        `json:"drift_util_spread,omitempty"`
	Cluster         clusterJSON    `json:"cluster"`
	Planner         *repair.State  `json:"planner"`
	// Provider is the delay-provider state of sessions opened under a
	// non-dense WithDelayProvider model (snapshot version >= 2). When set,
	// the cluster's clients carry no rtt_row_ms — the provider state IS
	// the delay store, and recovery reconstructs it bit-identically.
	Provider *core.ProviderState `json:"provider,omitempty"`
}

// durable is a ClusterSession's write-ahead journal: every event is
// encoded and appended (synced) BEFORE it is applied, so an event whose
// apply the caller saw acknowledged is on disk, and recovery replaying
// the log reaches the exact state the crash interrupted (DESIGN.md §11).
type durable struct {
	dir string
	w   *wal.Writer
	// snapEvery / sinceSnap drive auto-checkpointing; lastFullSolves
	// detects planner epochs (full re-solves) so they get advisory markers.
	snapEvery      int
	sinceSnap      int
	lastFullSolves int
	// replaying suspends journaling while recovery re-applies the log
	// through the live mutators.
	replaying bool
	closed    bool
	// hook is the crash-injection point for the fault tests; it is threaded
	// into the WAL's Options.CrashHook and the snapshot writer.
	hook func(point string) error
	// snapDur/snapBytes/snaps are the checkpoint series; nil (disabled)
	// unless the session was opened WithTelemetry.
	snapDur   *telemetry.Histogram
	snapBytes *telemetry.Counter
	snaps     *telemetry.Counter
}

// attachTelemetry registers the durability layer's checkpoint series. A
// nil registry leaves the handles nil, which every record site checks.
func (d *durable) attachTelemetry(reg *telemetry.Registry) {
	d.snapDur = reg.Histogram("dvecap_snapshot_write_duration_seconds",
		"Wall time to render and durably write one session snapshot.", nil)
	d.snapBytes = reg.Counter("dvecap_snapshot_bytes_total",
		"Snapshot payload bytes written by checkpoints.")
	d.snaps = reg.Counter("dvecap_snapshots_total",
		"Session snapshots written (explicit and auto checkpoints).")
}

// walHook adapts the session's crash-injection hook to the WAL layer. The
// indirection matters: tests install s.dur.hook after Open returns.
func (s *ClusterSession) walHook() func(string) error {
	return func(point string) error {
		if s.dur != nil && s.dur.hook != nil {
			return s.dur.hook(point)
		}
		return nil
	}
}

// journal appends the event's canonical encoding to the WAL and syncs it.
// Nil when the session is not durable or is replaying its own log. Called
// BEFORE the event is applied; a journaled event that the apply then
// rejects replays as rejected too (same inputs, same validation), so the
// log may legitimately hold events that changed nothing.
func (s *ClusterSession) journal(e *repair.Event) error {
	if s.dur == nil || s.dur.replaying {
		return nil
	}
	if s.dur.closed {
		return ErrSessionClosed
	}
	payload, err := e.Encode()
	if err != nil {
		return err
	}
	if _, err := s.dur.w.Append(payload); err != nil {
		return fmt.Errorf("dvecap: journal %s: %w", e.Op, err)
	}
	return nil
}

// afterApply runs the durable bookkeeping once an event has been applied:
// an advisory epoch marker when the planner ran a full re-solve, and the
// auto-checkpoint cadence. During replay it only tracks the epoch counter
// (the markers already in the log are verified by applyEvent).
func (s *ClusterSession) afterApply() error {
	if s.dur == nil {
		return nil
	}
	if fs := s.planner().Stats().FullSolves; fs != s.dur.lastFullSolves {
		s.dur.lastFullSolves = fs
		if !s.dur.replaying {
			payload, err := (&repair.Event{Op: repair.OpEpoch, FullSolves: fs}).Encode()
			if err != nil {
				return err
			}
			if _, err := s.dur.w.Append(payload); err != nil {
				return fmt.Errorf("dvecap: journal epoch: %w", err)
			}
		}
	}
	if s.dur.replaying {
		return nil
	}
	s.dur.sinceSnap++
	if s.dur.snapEvery > 0 && s.dur.sinceSnap >= s.dur.snapEvery {
		return s.Checkpoint()
	}
	return nil
}

// snapshotPayload renders the session's full durable state as of lsn.
func (s *ClusterSession) snapshotPayload(lsn uint64) ([]byte, error) {
	pl := s.planner()
	p := pl.Problem()
	m := p.NumServers()
	cj := clusterJSON{
		DelayBoundMs: p.D,
		Servers:      make([]serverJSON, m),
		ServerRTTsMs: p.SS,
		Zones:        append([]string(nil), s.binding.ZoneNames()...),
		Clients:      make([]clientJSON, p.NumClients()),
	}
	for i, id := range s.binding.ServerNames() {
		cj.Servers[i] = serverJSON{ID: id, CapacityMbps: p.ServerCaps[i]}
	}
	// Dense client order IS the planner's problem order; the snapshot's
	// client list must follow it so NewFromState's renumbering (handles
	// 0..k-1 in dense order) re-ties the same IDs to the same clients.
	for _, id := range s.binding.IDs() {
		h, err := s.binding.Handle(id)
		if err != nil {
			return nil, err
		}
		j, err := pl.Index(h)
		if err != nil {
			return nil, err
		}
		cj.Clients[j] = clientJSON{
			ID:            id,
			Zone:          s.binding.ZoneID(p.ClientZones[j]),
			BandwidthMbps: p.ClientRT[j],
		}
		if p.Delays == nil {
			cj.Clients[j].RTTRowMs = p.CS[j]
		}
	}
	cj.ZoneAdjacency = adjacencyFromGraph(p.Adjacency, cj.Zones)
	cj.TrafficWeight = p.TrafficWeight
	// Provider-backed sessions serialise the provider's own state instead
	// of per-client dense rows: smaller, and — crucially — recovery
	// restores the provider's INTERNALS (coordinates, override lists, row
	// sharing) bit-identically, not just the delays it would report.
	var prov *core.ProviderState
	if p.Delays != nil {
		prov = p.Delays.State()
	}
	st, err := pl.ExportState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(sessionSnapshot{
		Version:         snapshotVersion,
		LSN:             lsn,
		Algo:            s.algo,
		Overflow:        s.overflow,
		DriftPQoS:       s.driftPQoS,
		DriftUtilSpread: s.driftSpread,
		Cluster:         cj,
		Planner:         st,
		Provider:        prov,
	})
}

// Checkpoint writes a snapshot of the session's current state and
// truncates the log segments it supersedes, bounding the next recovery's
// replay to events journaled after this call. A no-op on non-durable
// sessions. Auto-checkpointing (WithSnapshotEvery) calls this; call it
// explicitly before planned downtime — e.g. checkpoint, then drain, then
// stop, so a restart replays nothing.
func (s *ClusterSession) Checkpoint() (err error) {
	if s.dur == nil {
		return nil
	}
	if s.dur.closed {
		return ErrSessionClosed
	}
	defer s.span("checkpoint")(&err)
	var start time.Time
	if s.dur.snapDur != nil {
		start = time.Now()
	}
	lsn := s.dur.w.NextLSN() - 1
	payload, err := s.snapshotPayload(lsn)
	if err != nil {
		return err
	}
	if err := wal.WriteSnapshot(s.dur.dir, lsn, payload, s.walHook()); err != nil {
		return err
	}
	if s.dur.snapDur != nil {
		// The observation covers render + durable write; the log truncation
		// and snapshot pruning below are cleanup, not the checkpoint cost a
		// recovery-time budget cares about.
		s.dur.snapDur.Observe(time.Since(start).Seconds())
		s.dur.snapBytes.Add(uint64(len(payload)))
		s.dur.snaps.Inc()
	}
	if err := s.dur.w.TruncateThrough(lsn); err != nil {
		return err
	}
	if err := wal.PruneSnapshots(s.dur.dir, keepSnapshots); err != nil {
		return err
	}
	s.dur.sinceSnap = 0
	return nil
}

// Close checkpoints a durable session and releases its log. Further events
// fail with ErrSessionClosed; read paths keep working. A no-op on
// non-durable sessions and on second call.
func (s *ClusterSession) Close() error {
	if s.dur == nil || s.dur.closed {
		return nil
	}
	err := s.Checkpoint()
	s.dur.closed = true
	if cerr := s.dur.w.Close(); err == nil {
		err = cerr
	}
	return err
}

// openDurable is Open's durable branch: recover when dir already holds
// state, otherwise solve fresh and establish the baseline snapshot before
// the first log segment exists — a crash between the two leaves either
// nothing (next Open solves fresh again) or a snapshot-only directory
// (next Open recovers from it with an empty tail). There is no window
// where a log exists without a snapshot under it.
func (c *Cluster) openDurable(algorithm string, cfg config) (*ClusterSession, error) {
	has, err := wal.HasState(cfg.durDir)
	if err != nil {
		return nil, err
	}
	if has {
		return recoverSession(algorithm, cfg)
	}
	s, err := c.openSession(algorithm, cfg)
	if err != nil {
		return nil, err
	}
	s.dur = &durable{
		dir:            cfg.durDir,
		snapEvery:      cfg.snapEvery,
		lastFullSolves: s.planner().Stats().FullSolves,
	}
	s.dur.attachTelemetry(cfg.tele)
	base, err := s.snapshotPayload(0)
	if err != nil {
		return nil, err
	}
	if err := wal.WriteSnapshot(cfg.durDir, 0, base, s.walHook()); err != nil {
		return nil, err
	}
	w, err := wal.Open(cfg.durDir, 0, wal.Options{CrashHook: s.walHook(), Telemetry: cfg.tele})
	if err != nil {
		return nil, err
	}
	s.dur.w = w
	return s, nil
}

// recoverSession rebuilds a session from the newest readable snapshot plus
// the log tail after it, replayed through the SAME mutators live traffic
// uses. The stored trajectory-shaping config (algorithm must match what
// the caller asked for; overflow policy and guard thresholds are adopted
// from the snapshot) wins over the caller's options — only the worker
// count is taken from the caller, since results are worker-invariant
// (DESIGN.md §8).
func recoverSession(algorithm string, cfg config) (*ClusterSession, error) {
	dir := cfg.durDir
	lsns, err := wal.SnapshotLSNs(dir)
	if err != nil {
		return nil, err
	}
	if len(lsns) == 0 {
		return nil, fmt.Errorf("dvecap: %s holds log segments but no snapshot", dir)
	}
	var snap sessionSnapshot
	var lastErr error
	found := false
	for x := len(lsns) - 1; x >= 0 && !found; x-- {
		raw, err := wal.ReadSnapshot(dir, lsns[x])
		if err != nil {
			lastErr = err
			continue
		}
		var cand sessionSnapshot
		if err := json.Unmarshal(raw, &cand); err != nil {
			lastErr = fmt.Errorf("snapshot %d: %w", lsns[x], err)
			continue
		}
		if cand.Version < 1 || cand.Version > snapshotVersion {
			lastErr = fmt.Errorf("snapshot %d has version %d, this build reads 1..%d", lsns[x], cand.Version, snapshotVersion)
			continue
		}
		if cand.LSN != lsns[x] {
			lastErr = fmt.Errorf("snapshot %d declares LSN %d", lsns[x], cand.LSN)
			continue
		}
		snap, found = cand, true
	}
	if !found {
		return nil, fmt.Errorf("dvecap: no usable snapshot in %s: %w", dir, lastErr)
	}
	if snap.Algo != algorithm {
		return nil, fmt.Errorf("dvecap: stored session in %s uses algorithm %q, not %q", dir, snap.Algo, algorithm)
	}
	tp, ok := core.ByName(snap.Algo)
	if !ok {
		return nil, fmt.Errorf("dvecap: stored session uses unknown algorithm %q", snap.Algo)
	}
	var p *core.Problem
	if snap.Provider != nil {
		p, err = problemFromProviderSnapshot(&snap.Cluster, snap.Provider)
		if err != nil {
			return nil, fmt.Errorf("dvecap: snapshot cluster: %w", err)
		}
	} else {
		rc, err := clusterFromJSON(&snap.Cluster)
		if err != nil {
			return nil, fmt.Errorf("dvecap: snapshot cluster: %w", err)
		}
		p, err = rc.problem()
		if err != nil {
			return nil, err
		}
	}
	ocfg := cfg
	ocfg.overflow = snap.Overflow
	opt, err := ocfg.coreOptions()
	if err != nil {
		return nil, err
	}
	pl, err := repair.NewFromState(repair.Config{
		Algo:            tp,
		Opt:             opt,
		DriftPQoS:       snap.DriftPQoS,
		DriftUtilSpread: snap.DriftUtilSpread,
	}, p, snap.Planner)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(snap.Cluster.Clients))
	for j, cl := range snap.Cluster.Clients {
		ids[j] = cl.ID
	}
	serverIDs := make([]string, len(snap.Cluster.Servers))
	for i, sv := range snap.Cluster.Servers {
		serverIDs[i] = sv.ID
	}
	binding, err := repair.RestoreIDBinding(pl, ids, serverIDs, snap.Cluster.Zones)
	if err != nil {
		return nil, err
	}
	s := &ClusterSession{
		binding:     binding,
		algo:        snap.Algo,
		delayBound:  p.D,
		rowBuf:      make([]float64, p.NumServers()),
		overflow:    snap.Overflow,
		driftPQoS:   snap.DriftPQoS,
		driftSpread: snap.DriftUtilSpread,
	}
	s.dur = &durable{
		dir:            dir,
		snapEvery:      cfg.snapEvery,
		replaying:      true,
		lastFullSolves: pl.Stats().FullSolves,
	}
	s.dur.attachTelemetry(cfg.tele)
	recStart := time.Now()
	replayed := 0
	if _, err := wal.Replay(dir, snap.LSN, func(lsn uint64, payload []byte) error {
		e, err := repair.DecodeEvent(payload)
		if err != nil {
			return fmt.Errorf("dvecap: LSN %d: %w", lsn, err)
		}
		if e.Op != repair.OpEpoch {
			replayed++
		}
		if err := s.applyEvent(e); err != nil {
			return fmt.Errorf("dvecap: replaying LSN %d: %w", lsn, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	w, err := wal.Open(dir, snap.LSN, wal.Options{CrashHook: s.walHook(), Telemetry: cfg.tele})
	if err != nil {
		return nil, err
	}
	s.dur.w = w
	s.dur.replaying = false
	s.dur.sinceSnap = replayed
	// Observability attaches only now, with the tail replayed: the repair
	// and trace series reflect live traffic, not a re-run of pre-crash
	// events, and the one-shot recovery gauges record what the replay cost.
	if cfg.tele != nil {
		pl.SetTelemetry(cfg.tele)
		cfg.tele.Gauge("dvecap_recovery_duration_seconds",
			"Wall time of the last crash recovery (snapshot load excluded, log replay included).").
			Set(time.Since(recStart).Seconds())
		cfg.tele.Gauge("dvecap_recovery_events_replayed",
			"Log-tail events the last crash recovery replayed.").
			Set(float64(replayed))
	}
	s.tracer = telemetry.NewTracer(cfg.traceW)
	s.tele = cfg.tele
	return s, nil
}

// problemFromProviderSnapshot rebuilds a provider-backed session's problem
// directly from the snapshot: topology and population from the cluster
// spec, delays from the serialized provider state (reconstructed
// bit-identically by core.NewProviderFromState). The dense builder path is
// bypassed — provider snapshots carry no per-client rows to feed it.
func problemFromProviderSnapshot(cj *clusterJSON, st *core.ProviderState) (*core.Problem, error) {
	dp, err := core.NewProviderFromState(st)
	if err != nil {
		return nil, err
	}
	zoneIdx := make(map[string]int, len(cj.Zones))
	for z, id := range cj.Zones {
		zoneIdx[id] = z
	}
	k := len(cj.Clients)
	p := &core.Problem{
		ServerCaps:  make([]float64, len(cj.Servers)),
		ClientZones: make([]int, k),
		NumZones:    len(cj.Zones),
		ClientRT:    make([]float64, k),
		SS:          cj.ServerRTTsMs,
		D:           cj.DelayBoundMs,
		Delays:      dp,
	}
	for i, sv := range cj.Servers {
		p.ServerCaps[i] = sv.CapacityMbps
	}
	for j, cl := range cj.Clients {
		z, ok := zoneIdx[cl.Zone]
		if !ok {
			return nil, fmt.Errorf("client %q: unknown zone %q", cl.ID, cl.Zone)
		}
		p.ClientZones[j] = z
		p.ClientRT[j] = cl.BandwidthMbps
	}
	if err := attachAdjacencyJSON(p, cj.ZoneAdjacency, zoneIdx); err != nil {
		return nil, err
	}
	p.TrafficWeight = cj.TrafficWeight
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// attachAdjacencyJSON rebuilds a snapshot's interaction graph onto p.
func attachAdjacencyJSON(p *core.Problem, edges []adjacencyJSON, zoneIdx map[string]int) error {
	if len(edges) == 0 {
		return nil
	}
	g := interact.New(p.NumZones)
	for _, e := range edges {
		a, ok := zoneIdx[e.Zone1]
		if !ok {
			return fmt.Errorf("adjacency: unknown zone %q", e.Zone1)
		}
		b, ok := zoneIdx[e.Zone2]
		if !ok {
			return fmt.Errorf("adjacency: unknown zone %q", e.Zone2)
		}
		if _, err := g.Set(a, b, e.WeightMbps); err != nil {
			return fmt.Errorf("adjacency (%q,%q): %w", e.Zone1, e.Zone2, err)
		}
	}
	p.Adjacency = g
	return nil
}

// applyEvent replays one journaled event through the live mutator it was
// journaled from. Apply-level rejections are swallowed: the live path
// journals before applying, so an event the apply then rejected is in the
// log too — and rejects again here, deterministically, changing nothing.
// Only structural problems (unknown op, epoch divergence) are errors:
// they mean the log and this build disagree about what the events MEAN,
// and continuing would silently diverge from the pre-crash trajectory.
func (s *ClusterSession) applyEvent(e *repair.Event) error {
	switch e.Op {
	case repair.OpJoin:
		_ = s.Join(e.ID, ClientSpec{Zone: e.Zone, BandwidthMbps: e.RT, RTTRow: e.Row})
	case repair.OpJoinBatch:
		joins := make([]ClientJoin, len(e.IDs))
		for x := range e.IDs {
			joins[x] = ClientJoin{ID: e.IDs[x], Spec: ClientSpec{
				Zone:          e.Zones[x],
				BandwidthMbps: e.RTs[x],
				RTTRow:        e.Rows[x],
			}}
		}
		_ = s.JoinBatch(joins)
	case repair.OpLeave:
		_ = s.Leave(e.ID)
	case repair.OpLeaveBatch:
		_ = s.LeaveBatch(e.IDs)
	case repair.OpMove:
		_ = s.Move(e.ID, e.Zone)
	case repair.OpMoveBatch:
		_ = s.MoveBatch(e.IDs, e.Zones)
	case repair.OpDelayRow:
		_ = s.UpdateDelayRow(e.ID, e.Row)
	case repair.OpServerDelays:
		_ = s.UpdateServerDelays(e.Server, e.RTTs)
	case repair.OpSetBandwidth:
		_ = s.SetBandwidth(e.ID, e.RT)
	case repair.OpSetZoneBW:
		_ = s.SetZoneBandwidth(e.Zone, e.RT)
	case repair.OpAddServer:
		// The journaled Row is the resolved inter-server row in the server
		// order AT THE EVENT'S LSN — which is exactly the current order
		// during replay. Rebuild the map form AddServer takes.
		rtts := make(map[string]float64, len(e.Row))
		for i, sid := range s.binding.ServerNames() {
			if i < len(e.Row) {
				rtts[sid] = e.Row[i]
			}
		}
		// e.Spare routes the replay through the warm-spare registration, so
		// a recovered pool server is still cordoned.
		add := s.AddServer
		if e.Spare {
			add = s.AddSpareServer
		}
		_ = add(e.Server, ServerSpec{
			CapacityMbps: e.Capacity,
			RTTs:         rtts,
			ClientRTTs:   e.ClientRTTs,
		})
	case repair.OpRemoveServer:
		_ = s.RemoveServer(e.Server)
	case repair.OpDrainServer:
		_ = s.DrainServer(e.Server)
	case repair.OpUncordon:
		_ = s.UncordonServer(e.Server)
	case repair.OpAddZone:
		// Adjacency seeds are NOT re-attached here: the live AddZone journals
		// each seed edge as its own set_adj event, which replays next.
		_ = s.AddZone(e.Zone, ZoneSpec{Host: e.Host})
	case repair.OpSetAdjacency:
		_ = s.SetZoneAdjacency(e.Zone, e.Zone2, e.Weight)
	case repair.OpAddAdjacency:
		_ = s.AddAdjacencyWeight(e.Zone, e.Zone2, e.Weight)
	case repair.OpRetireZone:
		_ = s.RetireZone(e.Zone)
	case repair.OpResolve:
		_ = s.Resolve()
	case repair.OpEpoch:
		if fs := s.planner().Stats().FullSolves; fs != e.FullSolves {
			return fmt.Errorf("replay diverged: %d full solves at epoch marker expecting %d", fs, e.FullSolves)
		}
	default:
		return fmt.Errorf("unknown journal op %q", e.Op)
	}
	return nil
}
