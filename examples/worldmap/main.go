// Worldmap: the full stack with a concrete virtual world. Instead of
// abstract zone IDs, avatars walk a 1000×800 map partitioned into a 10×8
// zone grid under a random-waypoint mobility model (with two "hot" zones
// pulling 40% of waypoints — the boss arena and the market). Boundary
// crossings produce the zone-change events; every minute the assignment
// re-executes, and we report interactivity, utilisation and the
// reassignment's disruption (contact switches, migrated state).
//
//	go run ./examples/worldmap
package main

import (
	"fmt"
	"log"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/topology"
	"dvecap/internal/vworld"
	"dvecap/internal/xrand"
)

func main() {
	rng := xrand.New(77)

	// Network substrate: the paper's 500-node topology.
	g, err := topology.Hier(rng.Split(), topology.DefaultHier())
	if err != nil {
		log.Fatal(err)
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// Virtual world: 10×8 zone grid, 1000 avatars, hot zones 27 and 52.
	vmap, err := vworld.NewMap(1000, 800, 10, 8)
	if err != nil {
		log.Fatal(err)
	}
	avatars, err := vworld.NewWorld(rng.Split(), vmap, vworld.Config{
		Avatars:      1000,
		MinSpeed:     2,
		MaxSpeed:     8,
		PauseMeanSec: 45,
		HotZones:     []int{27, 52},
		HotBias:      0.15,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Deployment: 20 servers; 1 Gbps total because the hot zones' quadratic
	// bandwidth demand (~85 clients each) roughly doubles the uniform
	// world's requirement.
	cfg := dve.DefaultConfig()
	cfg.Zones = vmap.Zones()
	cfg.TotalCapacityMbps = 1000
	serverNodes := rng.SampleWithout(g.N(), cfg.Servers)
	serverCaps := rng.Simplex(cfg.Servers, cfg.TotalCapacityMbps, cfg.MinCapacityMbps)
	clientNodes := make([]int, 1000)
	for i := range clientNodes {
		clientNodes[i] = rng.IntN(g.N())
	}
	world, err := dve.NewWorldFromParts(cfg, g, dm, serverNodes, serverCaps,
		clientNodes, avatars.ZoneVector())
	if err != nil {
		log.Fatal(err)
	}

	opts := core.Options{Overflow: core.SpillLargestResidual}
	var prev *core.Assignment
	fmt.Println("minute  crossings  pQoS     R      contact-moves  migrated-Mbps")
	for minute := 0; minute <= 10; minute++ {
		crossings := 0
		if minute > 0 {
			// One minute of avatar movement in 1 s ticks.
			for tick := 0; tick < 60; tick++ {
				crossings += len(avatars.Step(1))
			}
			if err := world.SetClientZones(avatars.ZoneVector()); err != nil {
				log.Fatal(err)
			}
		}
		p := world.Problem()
		a, err := core.GreZGreC.Solve(rng.Split(), p, opts)
		if err != nil {
			log.Fatal(err)
		}
		m := core.Evaluate(p, a)
		moves, migrated := 0, 0.0
		if prev != nil {
			d := core.Diff(p, prev, a)
			moves = d.ContactMoves
			migrated = d.MigratedRT
		}
		fmt.Printf("%6d  %9d  %.3f  %.3f  %13d  %13.1f\n",
			minute, crossings, m.PQoS, m.Utilization, moves, migrated)
		prev = a
	}
	fmt.Println()
	fmt.Println("Zone crossings come from actual avatar movement (random waypoint with")
	fmt.Println("hot-zone bias); each re-execution trades contact switches and state")
	fmt.Println("migration for restored interactivity — the operational reality behind")
	fmt.Println("the paper's §3.4 and our staleness experiment.")
}
