package core

import (
	"testing"

	"dvecap/internal/xrand"
)

// sameAssignment fails the test unless a and b are identical in every zone
// hosting and every client contact.
func sameAssignment(t *testing.T, label string, a, b *Assignment) {
	t.Helper()
	for z := range a.ZoneServer {
		if a.ZoneServer[z] != b.ZoneServer[z] {
			t.Fatalf("%s: zone %d hosted on %d vs %d", label, z, a.ZoneServer[z], b.ZoneServer[z])
		}
	}
	for j := range a.ClientContact {
		if a.ClientContact[j] != b.ClientContact[j] {
			t.Fatalf("%s: client %d contact %d vs %d", label, j, a.ClientContact[j], b.ClientContact[j])
		}
	}
}

// searchWithWorkers runs the cached local search with the given worker
// count and returns the resulting assignment.
func searchWithWorkers(p *Problem, a *Assignment, rounds, workers int) *Assignment {
	ev := NewEvaluator(p, a)
	ev.SetWorkers(workers)
	ev.LocalSearch(rounds)
	return ev.Assignment()
}

// TestParallelLocalSearchMatchesSequential proves the tentpole equivalence
// chain on generous and tight random instances: for every round budget,
// the cache-free sequential rescan, the cached sequential search and the
// cached parallel search at several worker counts all accept the identical
// move sequence — the final assignments match move for move.
func TestParallelLocalSearchMatchesSequential(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := xrand.New(uint64(11000 + trial))
		tight := trial%2 == 1
		p := randomProblem(rng.Split(), tight)
		start, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, rounds := range []int{1, 2, 4} {
			rescan := NewEvaluator(p, start)
			rescan.localSearchRescan(rounds)
			want := rescan.Assignment()
			got := searchWithWorkers(p, start, rounds, 1)
			sameAssignment(t, "cached sequential vs full rescan", want, got)
			for _, workers := range []int{2, 3, 4, 8} {
				par := searchWithWorkers(p, start, rounds, workers)
				sameAssignment(t, "parallel vs sequential", got, par)
			}
		}
	}
}

// TestParallelLocalSearchSynthetic repeats the equivalence check on a
// plane-embedded instance with real locality structure (the medium shape
// of the benchmarks), where the search accepts long move sequences.
func TestParallelLocalSearchSynthetic(t *testing.T) {
	p := benchSyntheticCAP(42, 20, 80, 2000)
	start, err := RanZVirC.Solve(xrand.New(7), p, Options{Overflow: SpillLargestResidual})
	if err != nil {
		t.Fatal(err)
	}
	rescan := NewEvaluator(p, start)
	rescan.localSearchRescan(3)
	want := rescan.Assignment()
	seq := searchWithWorkers(p, start, 3, 1)
	sameAssignment(t, "cached sequential vs full rescan", want, seq)
	for _, workers := range []int{2, 4, 7} {
		par := searchWithWorkers(p, start, 3, workers)
		sameAssignment(t, "parallel vs sequential", seq, par)
	}
}

// TestCachedSearchUnderMutations interleaves every dynamic mutation with
// cached scans and checks each scan against a cold-cache evaluator built
// from a clone of the same state: stale cache rows would make the two
// accept different moves. This pins the invalidation invariants of
// DESIGN.md §8.
func TestCachedSearchUnderMutations(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := xrand.New(uint64(12000 + trial))
		p := randomProblem(rng.Split(), trial%3 == 0).Clone()
		a, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ev := NewEvaluator(p, a)
		if trial%2 == 0 {
			ev.SetWorkers(1 + rng.IntN(4))
		}
		m := p.NumServers()
		for step := 0; step < 60; step++ {
			switch k := ev.NumClients(); rng.IntN(7) {
			case 0:
				ev.AddClient(rng.IntN(p.NumZones), rng.Uniform(0.05, 0.5), randomDelayRow(rng, m))
			case 1:
				if k > 1 {
					ev.RemoveClient(rng.IntN(k))
				}
			case 2:
				if k > 0 {
					ev.MoveClient(rng.IntN(k), rng.IntN(p.NumZones))
				}
			case 3:
				if k > 0 {
					ev.SetClientDelays(rng.IntN(k), randomDelayRow(rng, m))
				}
			case 4:
				if k > 0 {
					ev.SetClientRT(rng.IntN(k), rng.Uniform(0.05, 0.5))
				}
			case 5:
				if k > 0 {
					ev.ApplyContactSwitch(rng.IntN(k), rng.IntN(m))
				}
			default:
				if k > 0 {
					ev.ApplyZoneMove(rng.IntN(p.NumZones), rng.IntN(m))
				}
			}
			// A cold evaluator on a cloned snapshot is the ground truth for
			// what the very next scan must decide.
			cold := NewEvaluator(p.Clone(), ev.Assignment())
			if rng.IntN(2) == 0 {
				z := rng.IntN(p.NumZones)
				if got, want := ev.ImproveZone(z), cold.ImproveZone(z); got != want {
					t.Fatalf("trial %d step %d: cached ImproveZone(%d) = %v, cold = %v",
						trial, step, z, got, want)
				}
			} else {
				if got, want := ev.bestZoneMove(), cold.bestZoneMove(); got != want {
					t.Fatalf("trial %d step %d: cached bestZoneMove = %v, cold = %v",
						trial, step, got, want)
				}
			}
			sameAssignment(t, "cached vs cold-cache scan", cold.Assignment(), ev.Assignment())
		}
	}
}

// TestWorkerPoolRaceStress pushes the sharded scan hard enough for the
// race detector to observe the worker pool: many workers, repeated
// rebinds, and concurrent-scan rounds over a structured instance. The
// assertions are light — the value of this test is `go test -race`.
func TestWorkerPoolRaceStress(t *testing.T) {
	p := benchSyntheticCAP(99, 12, 60, 1500)
	start, err := RanZVirC.Solve(xrand.New(3), p, Options{Overflow: SpillLargestResidual})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(p, start)
	want := searchWithWorkers(p, start, 4, 1)
	for _, workers := range []int{2, 5, 8, 16} {
		ev.Reset(p, start)
		ev.SetWorkers(workers)
		ev.LocalSearch(4)
		sameAssignment(t, "stress parallel vs sequential", want, ev.Assignment())
	}
}

// TestParallelGreZMatchesSequential proves the sharded cost-matrix build
// leaves GreZ (and the sticky and dynamic variants) bit-identical: counts
// are integers, so the partial-matrix merge is exact.
func TestParallelGreZMatchesSequential(t *testing.T) {
	// Above the small-instance cutoff so the parallel path actually runs.
	p := benchSyntheticCAP(17, 25, 40, 3000)
	for _, algo := range []IAPFunc{GreZ, GreZDynamic} {
		seq, err := algo(nil, p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 9} {
			par, err := algo(nil, p, Options{Overflow: SpillLargestResidual, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for z := range seq {
				if seq[z] != par[z] {
					t.Fatalf("workers=%d: zone %d on server %d, sequential %d",
						workers, z, par[z], seq[z])
				}
			}
		}
	}
}
