package dve

import (
	"fmt"
	"sort"

	"dvecap/internal/xrand"
)

// Dynamics operations implement the paper's §4.2 churn protocol ("we let
// 200 new clients randomly join, 200 existing clients randomly leave the
// virtual world and 200 clients randomly move to another zone"). All three
// preserve the world's placement models: joins draw from the same
// clustered/correlated distributions the world was built with, and moves
// re-draw the zone with the same correlation machinery.

// Join adds n clients placed by the world's distribution models and
// returns their indexes.
func (w *World) Join(rng *xrand.RNG, n int) []int {
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		node, zone := w.placeClient(rng)
		w.ClientNodes = append(w.ClientNodes, node)
		w.ClientZones = append(w.ClientZones, zone)
		idx = append(idx, len(w.ClientNodes)-1)
	}
	w.Cfg.Clients = len(w.ClientNodes)
	return idx
}

// Leave removes n uniformly chosen clients and returns their pre-removal
// indexes in ascending order, so callers holding per-client state indexed
// like the world can compact it identically. Remaining clients keep their
// relative order. It returns an error if n exceeds the population.
func (w *World) Leave(rng *xrand.RNG, n int) ([]int, error) {
	k := len(w.ClientNodes)
	if n > k {
		return nil, fmt.Errorf("dve: cannot remove %d of %d clients", n, k)
	}
	doomed := rng.SampleWithout(k, n)
	sort.Ints(doomed)
	remove := make([]bool, k)
	for _, j := range doomed {
		remove[j] = true
	}
	nodes := w.ClientNodes[:0]
	zones := w.ClientZones[:0]
	for j := 0; j < k; j++ {
		if remove[j] {
			continue
		}
		nodes = append(nodes, w.ClientNodes[j])
		zones = append(zones, w.ClientZones[j])
	}
	w.ClientNodes = nodes
	w.ClientZones = zones
	w.Cfg.Clients = len(w.ClientNodes)
	return doomed, nil
}

// Compact removes the entries of state at the given ascending indexes —
// the companion to Leave for caller-held per-client slices.
func Compact[T any](state []T, removed []int) []T {
	if len(removed) == 0 {
		return state
	}
	out := state[:0]
	ri := 0
	for j := range state {
		if ri < len(removed) && removed[ri] == j {
			ri++
			continue
		}
		out = append(out, state[j])
	}
	return out
}

// Move relocates n uniformly chosen clients to a newly drawn zone
// (guaranteed different from their current zone when more than one zone
// exists). Physical nodes do not change — avatars move, users do not.
// It returns the indexes of the moved clients.
func (w *World) Move(rng *xrand.RNG, n int) ([]int, error) {
	k := len(w.ClientNodes)
	if n > k {
		return nil, fmt.Errorf("dve: cannot move %d of %d clients", n, k)
	}
	moved := rng.SampleWithout(k, n)
	for _, j := range moved {
		if w.Cfg.Zones == 1 {
			break
		}
		old := w.ClientZones[j]
		placed := false
		// The correlated draw may keep returning the old zone (e.g. δ = 1
		// with a single-zone region block); cap the retries and fall back
		// to a uniform draw over the other zones.
		for attempt := 0; attempt < 16; attempt++ {
			z := w.drawZoneFor(rng, w.ClientNodes[j])
			if z != old {
				w.ClientZones[j] = z
				placed = true
				break
			}
		}
		if !placed {
			z := rng.IntN(w.Cfg.Zones - 1)
			if z >= old {
				z++
			}
			w.ClientZones[j] = z
		}
	}
	return moved, nil
}

// Churn applies the paper's Table 3 protocol in order: join, leave, move.
func (w *World) Churn(rng *xrand.RNG, join, leave, move int) error {
	w.Join(rng, join)
	if _, err := w.Leave(rng, leave); err != nil {
		return err
	}
	_, err := w.Move(rng, move)
	return err
}
