package core

import (
	"testing"

	"dvecap/internal/xrand"
)

// checkDynState asserts the evaluator's derived state against a fresh
// evaluator built from the (mutated) problem and current assignment —
// the dynamic-methods analogue of checkEvaluatorState.
func checkDynState(t *testing.T, ev *Evaluator) {
	t.Helper()
	p := ev.p
	a := ev.Assignment()
	fresh := NewEvaluator(p, a)
	if ev.WithQoS() != fresh.WithQoS() {
		t.Fatalf("withQoS = %d, fresh evaluator gives %d", ev.WithQoS(), fresh.WithQoS())
	}
	if !evalClose(ev.RAPCost(), fresh.RAPCost()) {
		t.Fatalf("rapCost = %v, fresh evaluator gives %v", ev.RAPCost(), fresh.RAPCost())
	}
	if !evalClose(ev.TotalLoad(), fresh.TotalLoad()) {
		t.Fatalf("totalLoad = %v, fresh evaluator gives %v", ev.TotalLoad(), fresh.TotalLoad())
	}
	for j := 0; j < p.NumClients(); j++ {
		if ev.ClientDelay(j) != fresh.ClientDelay(j) {
			t.Fatalf("client %d delay = %v, fresh gives %v", j, ev.ClientDelay(j), fresh.ClientDelay(j))
		}
	}
	for i := 0; i < p.NumServers(); i++ {
		if !evalClose(ev.ServerLoad(i), fresh.ServerLoad(i)) {
			t.Fatalf("server %d load = %v, fresh gives %v", i, ev.ServerLoad(i), fresh.ServerLoad(i))
		}
	}
	for z := 0; z < p.NumZones; z++ {
		if !evalClose(ev.zoneRT[z], fresh.zoneRT[z]) {
			t.Fatalf("zone %d RT = %v, fresh gives %v", z, ev.zoneRT[z], fresh.zoneRT[z])
		}
	}
	// The membership index must be a permutation-consistent inverse pair.
	seen := 0
	for z := 0; z < p.NumZones; z++ {
		for pos, j := range ev.zoneMembers[z] {
			seen++
			if p.ClientZones[j] != z {
				t.Fatalf("client %d indexed in zone %d but lives in %d", j, z, p.ClientZones[j])
			}
			if ev.posInZone[j] != pos {
				t.Fatalf("client %d posInZone = %d, bucket says %d", j, ev.posInZone[j], pos)
			}
		}
	}
	if seen != p.NumClients() {
		t.Fatalf("membership index covers %d clients, problem has %d", seen, p.NumClients())
	}
}

// randomDelayRow draws a fresh CS row for joins and delay updates.
func randomDelayRow(rng *xrand.RNG, m int) []float64 {
	row := make([]float64, m)
	for i := range row {
		row[i] = rng.Uniform(0, 500)
	}
	return row
}

// TestEvaluatorDynMatchesFresh drives the evaluator through long random
// churn sequences — joins, leaves, moves, delay updates, RT updates,
// greedy contact re-placement and seeded zone improvement — and checks all
// derived state against a from-scratch evaluator after every event.
func TestEvaluatorDynMatchesFresh(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := xrand.New(uint64(2400 + trial))
		p := randomProblem(rng.Split(), trial%3 == 0).Clone()
		a, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ev := NewEvaluator(p, a)
		m := p.NumServers()
		for step := 0; step < 80; step++ {
			switch k := ev.NumClients(); rng.IntN(6) {
			case 0:
				ev.AddClient(rng.IntN(p.NumZones), rng.Uniform(0.05, 0.5), randomDelayRow(rng, m))
			case 1:
				if k > 1 {
					ev.RemoveClient(rng.IntN(k))
				}
			case 2:
				if k > 0 {
					ev.MoveClient(rng.IntN(k), rng.IntN(p.NumZones))
				}
			case 3:
				if k > 0 {
					ev.SetClientDelays(rng.IntN(k), randomDelayRow(rng, m))
				}
			case 4:
				if k > 0 {
					ev.SetClientRT(rng.IntN(k), rng.Uniform(0.05, 0.5))
				}
			case 5:
				if k > 0 && rng.IntN(2) == 0 {
					ev.GreedyContact(rng.IntN(k))
				} else {
					ev.ImproveZone(rng.IntN(p.NumZones))
				}
			}
			checkDynState(t, ev)
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d step %d: mutated problem invalid: %v", trial, step, err)
			}
		}
	}
}

// TestEvaluatorAddRemoveRoundTrip checks that adding then removing the same
// client restores every derived quantity.
func TestEvaluatorAddRemoveRoundTrip(t *testing.T) {
	rng := xrand.New(88)
	p := randomProblem(rng.Split(), false).Clone()
	a, err := GreZGreC.Solve(rng.Split(), p, Options{Overflow: SpillLargestResidual})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(p, a)
	wantQoS, wantRAP, wantLoad := ev.WithQoS(), ev.RAPCost(), ev.TotalLoad()
	k := ev.NumClients()
	j := ev.AddClient(0, 0.25, randomDelayRow(rng, p.NumServers()))
	if j != k {
		t.Fatalf("AddClient returned index %d, want %d", j, k)
	}
	ev.RemoveClient(j)
	if ev.NumClients() != k {
		t.Fatalf("population %d after round trip, want %d", ev.NumClients(), k)
	}
	if ev.WithQoS() != wantQoS || !evalClose(ev.RAPCost(), wantRAP) || !evalClose(ev.TotalLoad(), wantLoad) {
		t.Fatalf("round trip drifted: qos %d→%d rap %v→%v load %v→%v",
			wantQoS, ev.WithQoS(), wantRAP, ev.RAPCost(), wantLoad, ev.TotalLoad())
	}
	checkDynState(t, ev)
}

// TestGreedyContactMatchesAttachSemantics pins the two attach rules: a
// client within the bound of its target connects directly; one outside it
// forwards through the feasible contact minimising effective delay.
func TestGreedyContactMatchesAttachSemantics(t *testing.T) {
	p := forwardingProblem().Clone()
	a := &Assignment{ZoneServer: []int{0}, ClientContact: []int{0, 0}}
	ev := NewEvaluator(p, a)
	if ev.GreedyContact(0) {
		t.Fatal("near client switched away from its in-bound target")
	}
	if !ev.GreedyContact(1) {
		t.Fatal("far client did not switch")
	}
	if got := ev.Contact(1); got != 1 {
		t.Fatalf("far client contact = %d, want forwarding via server 1", got)
	}
	if d := ev.ClientDelay(1); d != 90 {
		t.Fatalf("far client delay = %v, want 90", d)
	}
	checkDynState(t, ev)
}

// TestImproveZoneRepairsBadHosting seeds a zone on the wrong server and
// checks the localized scan rehomes it.
func TestImproveZoneRepairsBadHosting(t *testing.T) {
	p := tinyProblem().Clone()
	// Host both zones on s1: z0's clients (near s0) lose QoS.
	a := &Assignment{ZoneServer: []int{1, 1}, ClientContact: []int{1, 1, 1}}
	ev := NewEvaluator(p, a)
	if !ev.ImproveZone(0) {
		t.Fatal("no improving move found for mis-hosted zone")
	}
	if got := ev.ZoneHost(0); got != 0 {
		t.Fatalf("zone 0 hosted on %d, want 0", got)
	}
	if ev.WithQoS() != 3 {
		t.Fatalf("withQoS = %d, want 3", ev.WithQoS())
	}
	checkDynState(t, ev)
}
