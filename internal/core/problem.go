// Package core implements the paper's contribution: the client assignment
// problem (CAP) for distributed virtual environments, its two-phase
// decomposition into the initial assignment problem (IAP: zones → servers)
// and the refined assignment problem (RAP: clients → contact servers), the
// four heuristics of Section 3 (RanZ, GreZ, VirC, GreC) and their two-phase
// combinations, plus extensions used for ablations (dynamic-regret greedy,
// local search).
//
// All algorithms operate on a Problem snapshot — delay matrices, per-client
// bandwidth requirements, zone membership and server capacities — and emit
// an Assignment (a target server per zone, a contact server per client).
// Problems may be built from possibly-inaccurate delay estimates; evaluation
// against ground truth is the caller's concern (see Evaluate).
package core

import (
	"fmt"
	"math"

	"dvecap/internal/interact"
)

// Problem is a snapshot of a client assignment instance.
//
// Delay entries are round-trip times in milliseconds. CS may come from a
// measurement estimator rather than ground truth; algorithms treat it as
// the truth they optimise against.
type Problem struct {
	// ServerCaps[i] is the bandwidth capacity of server i, in Mbps.
	ServerCaps []float64
	// ClientZones[j] is the zone of client j.
	ClientZones []int
	// NumZones is the zone count; zones are 0..NumZones-1. Zones may be
	// empty (no clients), but every zone still needs a target server.
	NumZones int
	// ClientRT[j] is client j's bandwidth requirement on its target server
	// (the paper's R^T_{c_j}), in Mbps. Strictly positive.
	ClientRT []float64
	// CS[j][i] is the round-trip delay between client j and server i.
	// When Delays is non-nil, CS is nil and every access goes through the
	// provider; use CSAt/CSRow/CopyCSRow to read either representation.
	CS [][]float64
	// Delays, when non-nil, replaces the dense CS matrix with a pluggable
	// delay provider (delayprovider.go) — the memory-diet path for
	// million-client populations. nil keeps the raw CS matrix, which
	// remains the reference ("oracle") representation. Excluded from JSON:
	// providers serialise through their typed State (ProviderState), which
	// callers that marshal whole Problems must carry alongside.
	Delays DelayProvider `json:"-"`
	// SS[i][k] is the round-trip delay between servers i and k, already
	// discounted for the well-provisioned inter-server mesh.
	SS [][]float64
	// D is the DVE delay bound in milliseconds.
	D float64
	// Adjacency, when non-nil, is the weighted zone-interaction graph: for
	// each edge (z1, z2) with weight w the solution pays w of cross-server
	// traffic whenever the zones are hosted apart (DESIGN.md §15). The
	// traffic term is active only when TrafficWeight > 0 AND Adjacency is
	// set; otherwise the solver is bit-identical to a problem without
	// either. Mutating evaluators own the graph exclusively, like CS.
	// Excluded from JSON: the graph serialises through its typed State.
	Adjacency *interact.Graph `json:"-"`
	// TrafficWeight is the λ ≥ 0 scaling the traffic term against the RAP
	// cost in the search objective (both in the second lexicographic
	// level). 0 — the default — disables the term entirely.
	TrafficWeight float64
}

// TrafficOn reports whether the traffic term participates in the
// objective: an adjacency graph is bound and its weight is positive.
func (p *Problem) TrafficOn() bool {
	return p.Adjacency != nil && p.TrafficWeight > 0
}

// NumServers returns the number of servers.
func (p *Problem) NumServers() int { return len(p.ServerCaps) }

// NumClients returns the number of clients.
func (p *Problem) NumClients() int { return len(p.ClientZones) }

// ZoneClients returns, for each zone, the IDs of its clients.
func (p *Problem) ZoneClients() [][]int {
	out := make([][]int, p.NumZones)
	for j, z := range p.ClientZones {
		out[z] = append(out[z], j)
	}
	return out
}

// ZoneRT returns each zone's total target-server bandwidth requirement
// (the paper's R_{z}).
func (p *Problem) ZoneRT() []float64 {
	out := make([]float64, p.NumZones)
	for j, z := range p.ClientZones {
		out[z] += p.ClientRT[j]
	}
	return out
}

// TotalCapacity returns the summed server capacity.
func (p *Problem) TotalCapacity() float64 {
	var t float64
	for _, c := range p.ServerCaps {
		t += c
	}
	return t
}

// Validate checks structural consistency and returns the first violation.
func (p *Problem) Validate() error {
	m, k := p.NumServers(), p.NumClients()
	if m == 0 {
		return fmt.Errorf("core: problem has no servers")
	}
	if p.NumZones <= 0 {
		return fmt.Errorf("core: problem has %d zones, want > 0", p.NumZones)
	}
	if p.D <= 0 {
		return fmt.Errorf("core: delay bound %v, want > 0", p.D)
	}
	for i, c := range p.ServerCaps {
		if c <= 0 || math.IsNaN(c) {
			return fmt.Errorf("core: server %d capacity %v, want > 0", i, c)
		}
	}
	if len(p.ClientRT) != k {
		return fmt.Errorf("core: %d clients but %d RT entries", k, len(p.ClientRT))
	}
	if p.Delays != nil {
		if p.CS != nil {
			return fmt.Errorf("core: problem has both a dense CS matrix and a delay provider")
		}
		if kc := p.Delays.NumClients(); kc != k {
			return fmt.Errorf("core: %d clients but delay provider holds %d", k, kc)
		}
		if mc := p.Delays.NumServers(); mc != m {
			return fmt.Errorf("core: %d servers but delay provider holds %d", m, mc)
		}
	} else if len(p.CS) != k {
		return fmt.Errorf("core: %d clients but %d CS rows", k, len(p.CS))
	}
	for j := 0; j < k; j++ {
		if z := p.ClientZones[j]; z < 0 || z >= p.NumZones {
			return fmt.Errorf("core: client %d in zone %d, want [0,%d)", j, z, p.NumZones)
		}
		if p.ClientRT[j] <= 0 || math.IsNaN(p.ClientRT[j]) {
			return fmt.Errorf("core: client %d RT %v, want > 0", j, p.ClientRT[j])
		}
		if p.Delays != nil {
			// Providers validate their own entries at construction time;
			// walking k × m provider reads here would defeat the point of
			// bounded-memory million-client opens.
			continue
		}
		if len(p.CS[j]) != m {
			return fmt.Errorf("core: CS row %d has %d entries, want %d", j, len(p.CS[j]), m)
		}
		for i, d := range p.CS[j] {
			if d < 0 || math.IsNaN(d) {
				return fmt.Errorf("core: CS[%d][%d] = %v invalid", j, i, d)
			}
		}
	}
	if p.Adjacency != nil && p.Adjacency.NumZones() != p.NumZones {
		return fmt.Errorf("core: adjacency graph covers %d zones, problem has %d", p.Adjacency.NumZones(), p.NumZones)
	}
	if p.TrafficWeight < 0 || math.IsNaN(p.TrafficWeight) {
		return fmt.Errorf("core: traffic weight %v, want ≥ 0", p.TrafficWeight)
	}
	if len(p.SS) != m {
		return fmt.Errorf("core: %d servers but %d SS rows", m, len(p.SS))
	}
	for i := 0; i < m; i++ {
		if len(p.SS[i]) != m {
			return fmt.Errorf("core: SS row %d has %d entries, want %d", i, len(p.SS[i]), m)
		}
		if p.SS[i][i] != 0 {
			return fmt.Errorf("core: SS diagonal [%d] = %v, want 0", i, p.SS[i][i])
		}
		for kk, d := range p.SS[i] {
			if d < 0 || math.IsNaN(d) {
				return fmt.Errorf("core: SS[%d][%d] = %v invalid", i, kk, d)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		ServerCaps:  append([]float64(nil), p.ServerCaps...),
		ClientZones: append([]int(nil), p.ClientZones...),
		NumZones:    p.NumZones,
		ClientRT:    append([]float64(nil), p.ClientRT...),
		SS:          make([][]float64, len(p.SS)),
		D:           p.D,

		Adjacency:     p.Adjacency.Clone(),
		TrafficWeight: p.TrafficWeight,
	}
	// CS stays nil for provider-backed problems (Validate rejects a problem
	// carrying both representations).
	if p.CS != nil {
		q.CS = make([][]float64, len(p.CS))
	}
	for j := range p.CS {
		q.CS[j] = append([]float64(nil), p.CS[j]...)
	}
	for i := range p.SS {
		q.SS[i] = append([]float64(nil), p.SS[i]...)
	}
	if p.Delays != nil {
		q.Delays = p.Delays.Clone()
	}
	return q
}

// ClonePadded is Clone with the CS rows carved from one contiguous arena,
// each with spare capacity for `slack` extra servers. Dimension mutations
// (Evaluator.AddServer appends a delay column to every row) then write a
// fixed-stride streaming pattern instead of chasing per-row allocations —
// the difference between memory bandwidth and a cache miss per client at
// 100k clients. Rows whose growth outruns the slack fall back to ordinary
// per-row appends; correctness never depends on the layout. Provider-backed
// problems have no rows to pad: the provider is Clone()d instead.
func (p *Problem) ClonePadded(slack int) *Problem {
	if p.Delays != nil {
		return p.Clone()
	}
	if slack < 0 {
		slack = 0
	}
	m := p.NumServers()
	stride := m + slack
	q := &Problem{
		ServerCaps:  append([]float64(nil), p.ServerCaps...),
		ClientZones: append([]int(nil), p.ClientZones...),
		NumZones:    p.NumZones,
		ClientRT:    append([]float64(nil), p.ClientRT...),
		CS:          make([][]float64, len(p.CS)),
		SS:          make([][]float64, len(p.SS)),
		D:           p.D,

		Adjacency:     p.Adjacency.Clone(),
		TrafficWeight: p.TrafficWeight,
	}
	for i := range p.SS {
		q.SS[i] = append([]float64(nil), p.SS[i]...)
	}
	arena := make([]float64, len(p.CS)*stride)
	for j, row := range p.CS {
		dst := arena[j*stride : j*stride+m : (j+1)*stride]
		copy(dst, row)
		q.CS[j] = dst
	}
	return q
}

// CSAt returns the client↔server delay CS[j][i], reading through the
// bound delay provider when one is set. Every algorithm and evaluator path
// reads delays through CSAt/CSRow, so dense and provider-backed problems
// run the identical arithmetic.
func (p *Problem) CSAt(j, i int) float64 {
	if p.Delays != nil {
		return p.Delays.ClientServer(j, i)
	}
	return p.CS[j][i]
}

// CSRow returns client j's full delay row. Dense problems (and providers
// backed by real rows) return an internal slice without copying; otherwise
// the row is materialized into buf, which must have NumServers entries.
// Treat the result as read-only, valid only until the next mutation; for
// concurrent readers give each its own buf.
func (p *Problem) CSRow(j int, buf []float64) []float64 {
	if p.Delays != nil {
		return p.Delays.Row(j, buf)
	}
	return p.CS[j]
}

// CopyCSRow copies client j's delay row into dst (len NumServers).
func (p *Problem) CopyCSRow(j int, dst []float64) {
	if p.Delays != nil {
		p.Delays.Row(j, dst)
		return
	}
	copy(dst, p.CS[j])
}

// WithDelays returns a copy of the problem whose CS and SS matrices are
// replaced by DEEP COPIES of cs and ss — used to evaluate an assignment
// computed from estimated delays against the ground truth. The caller
// keeps ownership of cs and ss; mutating them later never reaches the
// returned problem (the shallow aliasing this method used to do let
// callers alias mutable rows into a live evaluator unnoticed). Callers
// handing over freshly built matrices they will not touch again can use
// WithDelaysOwned to skip the copy. Any bound delay provider is dropped:
// the explicit matrices win.
func (p *Problem) WithDelays(cs, ss [][]float64) *Problem {
	ccs := make([][]float64, len(cs))
	for j := range cs {
		ccs[j] = append([]float64(nil), cs[j]...)
	}
	css := make([][]float64, len(ss))
	for i := range ss {
		css[i] = append([]float64(nil), ss[i]...)
	}
	return p.WithDelaysOwned(ccs, css)
}

// WithDelaysOwned is WithDelays transferring ownership instead of copying:
// the returned problem aliases cs and ss directly, so the caller must not
// mutate them afterwards. The zero-copy path for estimator pipelines that
// build a fresh matrix per call.
func (p *Problem) WithDelaysOwned(cs, ss [][]float64) *Problem {
	q := *p
	q.CS = cs
	q.SS = ss
	q.Delays = nil
	return &q
}
