package dvecap

import (
	"fmt"
	"io"

	"dvecap/internal/core"
	"dvecap/internal/xrand"
	"dvecap/telemetry"
)

// OverflowPolicy controls what the assignment algorithms do when no server
// has residual capacity for an item. It mirrors the engine's internal
// policy without exposing it.
type OverflowPolicy int

const (
	// SpillLargestResidual places the unplaceable item on the server with
	// the largest residual capacity, accepting a capacity violation so the
	// run always completes (the default everywhere in this package).
	SpillLargestResidual OverflowPolicy = iota
	// ErrorOnOverflow aborts the solve with an error instead.
	ErrorOnOverflow
)

// DelayModel selects how a solved or opened cluster stores client↔server
// delays — the dominant memory cost at scale (a dense matrix is
// clients × servers × 8 bytes; one million clients against one hundred
// servers is ~800 MB before the solver runs).
type DelayModel int

const (
	// DenseDelays stores the full client × server delay matrix — exact and
	// the default. Memory is O(clients × servers).
	DenseDelays DelayModel = iota
	// CoordDelays stores Vivaldi-style network coordinates per client and
	// server plus a sparse per-client list of measured overrides. Unmeasured
	// pairs read the coordinate-space prediction; measured pairs are exact.
	// Memory is O(clients × dim + measurements) — the million-client diet.
	// Clients may join with a coordinate (ClientSpec.Coord) and partial
	// RTTs, or with full rows (then every entry is stored as an override
	// and results are bit-identical to DenseDelays).
	CoordDelays
	// SharedRowDelays deduplicates identical delay rows across clients with
	// copy-on-write divergence — the landmark/cluster-shared-measurement
	// model, where clients behind the same vantage share one row. Exact:
	// results are always bit-identical to DenseDelays. Memory is
	// O(distinct rows × servers).
	SharedRowDelays
)

// Option configures a Solve or Open call (and, where noted, NewScenario).
// Options follow the functional-options style: pass any number, later ones
// win. Inapplicable options are ignored — e.g. WithDriftGuard does nothing
// in Solve, WithEstimationError nothing in Open, and only WithCorrelation
// and WithSeed apply to NewScenario.
type Option func(*config)

// config is the resolved option set. It stays unexported so the exported
// surface carries no engine types.
type config struct {
	workers  int
	overflow OverflowPolicy
	lsRounds int
	drift    float64
	estErr   float64
	estSet   bool
	seed     uint64
	seedSet  bool
	corr     float64
	corrSet  bool
	// durability (Open only): data directory, auto-checkpoint cadence and
	// the imbalance-guard threshold.
	durDir    string
	snapEvery int
	spread    float64
	// observability (Open only): metrics registry and trace-log sink.
	tele   *telemetry.Registry
	traceW io.Writer
	// delayModel selects the delay storage backend (WithDelayProvider).
	delayModel DelayModel
	// traffic term (WithTrafficWeight, WithZoneAdjacency): the objective
	// weight and run-scoped interaction edges layered over the builder's.
	trafficW   float64
	trafficSet bool
	adjEdges   []adjEdge
	// rng lets the Scenario adapters thread their own stream through the
	// engine, preserving bit-identical results with the legacy paths.
	rng *xrand.RNG
}

func resolveOptions(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// coreOptions maps the public knobs onto the engine's option struct.
func (c config) coreOptions() (core.Options, error) {
	opt := core.Options{Workers: c.workers}
	switch c.overflow {
	case SpillLargestResidual:
		opt.Overflow = core.SpillLargestResidual
	case ErrorOnOverflow:
		opt.Overflow = core.ErrorOnOverflow
	default:
		return opt, fmt.Errorf("dvecap: unknown overflow policy %d", c.overflow)
	}
	return opt, nil
}

// rngFor returns the configured random stream: the adapter-supplied one
// when set, otherwise a fresh stream seeded by WithSeed (default 0).
func (c config) rngFor() *xrand.RNG {
	if c.rng != nil {
		return c.rng
	}
	return xrand.New(c.seed)
}

// WithWorkers shards the engine's parallelisable scans — the zone-move
// search and the greedy phase's cost-matrix build — across n goroutines.
// 0 or 1 run sequentially, negative uses all CPUs. Results are
// bit-identical for every setting (DESIGN.md §8).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithOverflow selects the capacity-overflow policy (default
// SpillLargestResidual).
func WithOverflow(p OverflowPolicy) Option {
	return func(c *config) { c.overflow = p }
}

// WithLocalSearchRounds layers up to n rounds of the best-improvement
// local search (zone moves + contact switches, DESIGN.md §5) on top of the
// two-phase result. 0 (the default) disables it.
func WithLocalSearchRounds(n int) Option {
	return func(c *config) { c.lsRounds = n }
}

// WithDriftGuard arms the session's quality guard at p: once the repaired
// solution's pQoS decays more than p below the last full solve's level, an
// amortized full two-phase re-solve fires automatically (DESIGN.md §7).
// 0 (the default for Open) disables the guard — full solves then happen
// only through explicit Resolve calls. Solve ignores this option.
func WithDriftGuard(p float64) Option {
	return func(c *config) { c.drift = p }
}

// WithDurability makes the session returned by Open durable: every event
// is journaled to a write-ahead log under dir BEFORE it is applied, and
// periodic snapshots (see WithSnapshotEvery, ClusterSession.Checkpoint)
// bound recovery to the log tail. When dir already holds session state,
// Open RECOVERS instead of solving fresh: the newest valid snapshot is
// loaded, the log tail replayed through the live event path, and the
// resumed trajectory is bit-identical to one that never crashed — the
// caller's cluster spec is then ignored and the stored algorithm must
// match the requested one (DESIGN.md §11). Solve ignores this option.
func WithDurability(dir string) Option {
	return func(c *config) { c.durDir = dir }
}

// WithSnapshotEvery sets a durable session's auto-checkpoint cadence: a
// snapshot is written (and old log segments truncated) every n journaled
// events. 0 (the default) disables auto-checkpointing — snapshots then
// happen only through explicit Checkpoint calls. Ignored without
// WithDurability.
func WithSnapshotEvery(n int) Option {
	return func(c *config) { c.snapEvery = n }
}

// WithImbalanceGuard arms the session's load-imbalance guard at spread:
// once the max−min per-server utilization spread rises more than this far
// above the level the last full solve achieved, an amortized full re-solve
// fires — catching hot-spot drift that leaves pQoS untouched (the pQoS
// guard, WithDriftGuard, watches quality; this one watches balance). 0
// (the default) disables it. Solve ignores this option.
func WithImbalanceGuard(spread float64) Option {
	return func(c *config) { c.spread = spread }
}

// WithTelemetry attaches a metrics registry to the session returned by
// Open: the repair planner, evaluator cache, and (with WithDurability) the
// write-ahead log register their counters, gauges and latency histograms
// there, and the registry renders them in Prometheus text exposition
// format (telemetry.Registry.WritePrometheus). Telemetry is observation
// only — an instrumented session's decisions are bit-identical to an
// uninstrumented one's (DESIGN.md §12). Nil (the default) disables all
// instrumentation at zero cost. Solve ignores this option.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) { c.tele = reg }
}

// WithTraceLog streams structured trace events — one JSON line per session
// mutation, with operation, start time, duration and outcome — to w. The
// session serializes writes; w need not be safe for concurrent use. Nil
// (the default) disables tracing. During crash recovery the replayed
// events are NOT re-traced; tracing resumes with the first live event.
// Solve ignores this option.
func WithTraceLog(w io.Writer) Option {
	return func(c *config) { c.traceW = w }
}

// WithDelayProvider selects the delay storage backend for Solve and Open
// (default DenseDelays, the full matrix). CoordDelays and SharedRowDelays
// trade the dense matrix for compressed representations so million-client
// clusters open in bounded memory — see the DelayModel constants for the
// exactness guarantees of each. The model is a property of the run, not
// the builder: the same Cluster may be solved under different models.
// Durable sessions snapshot the provider's state, so recovery restores the
// same model (and the same bits) the session was opened with.
func WithDelayProvider(m DelayModel) Option {
	return func(c *config) { c.delayModel = m }
}

// adjEdge is one WithZoneAdjacency edge, resolved against the cluster's
// zone IDs at Solve/Open time.
type adjEdge struct {
	a, b string
	w    float64
}

// WithTrafficWeight sets the inter-server traffic weight λ ≥ 0 for this
// Solve or Open call, overriding the builder's SetTrafficWeight. With
// λ > 0 and an interaction graph present, every adjacency edge whose
// endpoint zones are hosted on different servers adds λ × weight to the
// optimisation objective, so the search trades delay slack for hosting
// interacting zones together (DESIGN.md §15). 0 — the default everywhere —
// disables the term: results are bit-identical to a build without it.
func WithTrafficWeight(w float64) Option {
	return func(c *config) { c.trafficW = w; c.trafficSet = true }
}

// WithZoneAdjacency overlays one interaction edge (zone1, zone2, observed
// cross-zone interaction rate in Mbps) for this Solve or Open call, on top
// of any edges registered on the builder via SetZoneAdjacency. Pass the
// option once per edge; a weight of 0 removes the builder's edge. The
// zones must exist by solve time. The edge only influences placement under
// WithTrafficWeight(λ > 0); sessions additionally update edges live
// (ClusterSession.SetZoneAdjacency) as crossings are observed.
func WithZoneAdjacency(zone1, zone2 string, weightMbps float64) Option {
	return func(c *config) { c.adjEdges = append(c.adjEdges, adjEdge{zone1, zone2, weightMbps}) }
}

// WithEstimationError solves against delays perturbed by a multiplicative
// error factor e ≥ 1 (estimates uniform in [d/e, d·e], the King/IDMaps
// model) while evaluating the outcome against the supplied delays — the
// noisy-measurement ablation. Factors below 1 fail the solve. When the
// option is absent the solve runs on the supplied delays directly. Open
// ignores this option.
func WithEstimationError(e float64) Option {
	return func(c *config) { c.estErr = e; c.estSet = true }
}

// WithSeed seeds the engine's randomised choices (RanZ's shuffle,
// tie-breaks). Two runs over the same cluster with the same seed are
// identical. In NewScenario it overrides ScenarioParams.Seed.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed; c.seedSet = true }
}

// WithCorrelation sets the physical↔virtual correlation δ ∈ [0,1] for
// NewScenario, replacing the deprecated ScenarioParams.Correlation field
// whose zero value silently meant δ = 0. With this option the paper
// default (δ = 0.5) applies unless explicitly overridden. Solve and Open
// ignore this option.
func WithCorrelation(delta float64) Option {
	return func(c *config) { c.corr = delta; c.corrSet = true }
}

// withRNG threads an existing random stream through the engine — the
// Scenario adapters use it so the Cluster-backed paths replay the exact
// stream the legacy implementations consumed.
func withRNG(r *xrand.RNG) Option {
	return func(c *config) { c.rng = r }
}
