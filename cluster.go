package dvecap

import (
	"fmt"
	"math"

	"dvecap/internal/core"
	"dvecap/internal/estimator"
	"dvecap/internal/interact"
	"dvecap/internal/repair"
	"dvecap/telemetry"
)

// Sentinel errors of the Cluster API. Test with errors.Is; the director
// service shares the sentinels, so discrimination works across layers.
var (
	// ErrUnknownClient reports an operation on an unregistered client ID.
	ErrUnknownClient error = repair.ErrUnknownClient
	// ErrDuplicateClient reports a join under an ID already registered.
	ErrDuplicateClient error = repair.ErrDuplicateClient
	// ErrUnknownZone reports a reference to a zone ID never added (or
	// already retired).
	ErrUnknownZone error = repair.ErrUnknownZone
	// ErrUnknownServer reports a reference to a server ID never added (or
	// already removed).
	ErrUnknownServer error = repair.ErrUnknownServer
	// ErrServerNotEmpty reports a ClusterSession.RemoveServer while the
	// server still hosts zones or serves contacts — DrainServer first.
	ErrServerNotEmpty error = repair.ErrServerNotEmpty
	// ErrZoneNotEmpty reports a ClusterSession.RetireZone while clients
	// are still in the zone — Move or Leave them first.
	ErrZoneNotEmpty error = repair.ErrZoneNotEmpty
	// ErrLastServer reports an operation that would leave the session
	// without an available server (removing or draining the last one).
	ErrLastServer error = repair.ErrLastServer
	// ErrLastZone reports retiring the session's only zone.
	ErrLastZone error = repair.ErrLastZone
)

// ServerSpec describes one server of a Cluster.
type ServerSpec struct {
	// CapacityMbps is the server's bandwidth capacity. Required, > 0.
	CapacityMbps float64
	// RTTs maps other server IDs to the measured server↔server round-trip
	// time in milliseconds. A pair may be supplied on either endpoint (or
	// both, if they agree); every pair must be covered by the time the
	// cluster is solved, unless SetServerRTTs supplies the full matrix.
	// Servers referenced here may be added later. Inter-server links are
	// assumed well-provisioned — supply discounted RTTs if your deployment
	// models that (the paper uses 50%). For ClusterSession.AddServer the
	// map must cover every server the session currently has.
	RTTs map[string]float64
	// ClientRTTs maps client IDs to measured client↔server RTTs (ms)
	// toward THIS server. Only ClusterSession.AddServer reads it — it
	// seeds existing clients' delay columns for the new server; clients
	// absent from the map start at UnmeasuredRTTMs until a delay update
	// supplies a measurement. The Cluster builder ignores it (clients
	// supply full rows there).
	ClientRTTs map[string]float64
}

// ClientSpec describes one client: its zone, its bandwidth requirement on
// the zone's server, and its measured delays. Without Coord, exactly one
// of RTTs and RTTRow must be set and must cover every server. With Coord
// (usable only under WithDelayProvider(CoordDelays)), RTTs may be partial
// — or absent entirely — and RTTRow must be nil.
type ClientSpec struct {
	// Zone is the ID of the zone the client's avatar is in. Required.
	Zone string
	// BandwidthMbps is the client's bandwidth requirement on its target
	// server (the paper's R^T). Required, > 0.
	BandwidthMbps float64
	// RTTs maps server IDs to measured client↔server round-trip times in
	// milliseconds. Every server must be covered — unless Coord is set, in
	// which case the map may cover any subset (the measured candidates)
	// and unmeasured servers read the coordinate prediction.
	RTTs map[string]float64
	// RTTRow is the same information as a dense row in ServerIDs order —
	// the matrix-supplied form for callers that already hold one (e.g. a
	// King/IDMaps estimator snapshot).
	RTTRow []float64
	// Coord is the client's network coordinate (length DelayModel
	// dimensionality, core default 5) for CoordDelays clusters — the
	// million-client join path: no per-server rows at all, delays beyond
	// the RTTs subset are predicted from coordinate distance. Solving such
	// a cluster under any other delay model fails.
	Coord []float64
}

// Cluster assembles a client-assignment instance from real infrastructure:
// servers, zones and clients with string IDs and measured (or
// matrix-supplied) RTTs, instead of the synthetic Scenario generator. Once
// populated it is solved in one shot (Solve) or kept repaired under churn
// (Open).
//
// Dense indices — the ZoneServer/ClientContact slices of Result — follow
// insertion order: the i-th AddServer call is server index i, and likewise
// for zones and clients (see ServerIDs, ZoneIDs, ClientIDs). A Cluster is
// not safe for concurrent use; the session returned by Open is
// independent of later mutations of the builder.
type Cluster struct {
	delayBound float64

	serverIDs []string
	serverIdx map[string]int
	caps      []float64
	ssSpecs   []map[string]float64
	ssMatrix  [][]float64

	zoneIDs []string
	zoneIdx map[string]int

	// adj holds builder-registered interaction edges, keyed by the
	// canonical (lower, higher) dense zone-index pair; trafficW is the
	// builder-level traffic weight (SetTrafficWeight). Both feed the
	// traffic term of DESIGN.md §15; the Solve/Open options
	// WithZoneAdjacency and WithTrafficWeight layer over them per run.
	adj      map[[2]int]float64
	trafficW float64

	clientIDs []string
	clientIdx map[string]int
	clients   []ClientSpec

	// pre short-circuits building for the Scenario adapters, which already
	// hold a validated problem.
	pre *core.Problem

	built      *core.Problem
	builtModel DelayModel
	dirty      bool
}

// NewCluster starts an empty cluster with the given interactivity bound
// D in milliseconds (the paper's default is 250).
func NewCluster(delayBoundMs float64) *Cluster {
	return &Cluster{
		delayBound: delayBoundMs,
		serverIdx:  map[string]int{},
		zoneIdx:    map[string]int{},
		clientIdx:  map[string]int{},
	}
}

// AddServer registers a server. IDs must be unique across servers.
func (c *Cluster) AddServer(id string, spec ServerSpec) error {
	if id == "" {
		return fmt.Errorf("dvecap: empty server ID")
	}
	if _, dup := c.serverIdx[id]; dup {
		return fmt.Errorf("dvecap: duplicate server %q", id)
	}
	if !(spec.CapacityMbps > 0) { // rejects NaN too
		return fmt.Errorf("dvecap: server %q capacity %v, want > 0", id, spec.CapacityMbps)
	}
	c.serverIdx[id] = len(c.serverIDs)
	c.serverIDs = append(c.serverIDs, id)
	c.caps = append(c.caps, spec.CapacityMbps)
	rtts := make(map[string]float64, len(spec.RTTs))
	for k, v := range spec.RTTs {
		rtts[k] = v
	}
	c.ssSpecs = append(c.ssSpecs, rtts)
	c.dirty = true
	return nil
}

// AddZone registers a virtual-world zone. IDs must be unique across zones.
// Zones may be empty (no clients), but every zone is always hosted by
// exactly one server.
func (c *Cluster) AddZone(id string) error {
	if id == "" {
		return fmt.Errorf("dvecap: empty zone ID")
	}
	if _, dup := c.zoneIdx[id]; dup {
		return fmt.Errorf("dvecap: duplicate zone %q", id)
	}
	c.zoneIdx[id] = len(c.zoneIDs)
	c.zoneIDs = append(c.zoneIDs, id)
	c.dirty = true
	return nil
}

// AddClient registers a client. The zone must already exist; servers
// referenced by spec.RTTs may be added later (coverage is checked at
// solve time).
func (c *Cluster) AddClient(id string, spec ClientSpec) error {
	if id == "" {
		return fmt.Errorf("dvecap: empty client ID")
	}
	if _, dup := c.clientIdx[id]; dup {
		return fmt.Errorf("dvecap: %w %q", ErrDuplicateClient, id)
	}
	if _, ok := c.zoneIdx[spec.Zone]; !ok {
		return fmt.Errorf("dvecap: client %q: %w %q", id, ErrUnknownZone, spec.Zone)
	}
	if !(spec.BandwidthMbps > 0) { // rejects NaN too
		return fmt.Errorf("dvecap: client %q bandwidth %v Mbps, want > 0", id, spec.BandwidthMbps)
	}
	if spec.Coord != nil {
		if spec.RTTRow != nil {
			return fmt.Errorf("dvecap: client %q: Coord and RTTRow are mutually exclusive (partial RTTs may accompany a coordinate)", id)
		}
	} else if (spec.RTTs == nil) == (spec.RTTRow == nil) {
		return fmt.Errorf("dvecap: client %q: set exactly one of RTTs and RTTRow", id)
	}
	c.clientIdx[id] = len(c.clientIDs)
	c.clientIDs = append(c.clientIDs, id)
	c.clients = append(c.clients, spec)
	c.dirty = true
	return nil
}

// SetZoneAdjacency registers the interaction edge (zone1, zone2) with the
// given weight — the observed (or modelled) cross-zone interaction rate in
// Mbps. Both zones must already exist; a weight of 0 removes the edge.
// Edges shape placement only when the cluster is solved or opened with
// WithTrafficWeight(λ > 0): each edge hosted across two servers then adds
// λ × weight to the objective (DESIGN.md §15).
func (c *Cluster) SetZoneAdjacency(zone1, zone2 string, weightMbps float64) error {
	a, err := c.zoneIndex(zone1)
	if err != nil {
		return err
	}
	b, err := c.zoneIndex(zone2)
	if err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("dvecap: self-adjacency on zone %q", zone1)
	}
	if !(weightMbps >= 0) || math.IsInf(weightMbps, 1) { // rejects NaN too
		return fmt.Errorf("dvecap: adjacency (%q,%q) weight %v, want finite >= 0", zone1, zone2, weightMbps)
	}
	if a > b {
		a, b = b, a
	}
	if c.pre != nil {
		// Problem-wrapped clusters edit the problem's graph directly.
		if c.pre.Adjacency == nil {
			c.pre.Adjacency = interact.New(c.pre.NumZones)
		}
		if _, err := c.pre.Adjacency.Set(a, b, weightMbps); err != nil {
			return fmt.Errorf("dvecap: adjacency (%q,%q): %w", zone1, zone2, err)
		}
		return nil
	}
	if c.adj == nil {
		c.adj = map[[2]int]float64{}
	}
	if weightMbps == 0 {
		delete(c.adj, [2]int{a, b})
	} else {
		c.adj[[2]int{a, b}] = weightMbps
	}
	c.dirty = true
	return nil
}

// SetTrafficWeight sets the builder-level traffic weight λ ≥ 0 (default 0,
// term off). The WithTrafficWeight option overrides it per Solve/Open.
func (c *Cluster) SetTrafficWeight(w float64) error {
	if !(w >= 0) || math.IsInf(w, 1) { // rejects NaN too
		return fmt.Errorf("dvecap: traffic weight %v, want finite >= 0", w)
	}
	if c.pre != nil {
		c.pre.TrafficWeight = w
		return nil
	}
	c.trafficW = w
	c.dirty = true
	return nil
}

// SetServerRTTs supplies the full server↔server RTT matrix at once, in
// ServerIDs order, replacing any per-pair RTTs given to AddServer. The
// matrix must be square over the current servers with a zero diagonal.
func (c *Cluster) SetServerRTTs(rtts [][]float64) error {
	m := len(c.serverIDs)
	if len(rtts) != m {
		return fmt.Errorf("dvecap: RTT matrix has %d rows, want %d", len(rtts), m)
	}
	mat := make([][]float64, m)
	for i, row := range rtts {
		if len(row) != m {
			return fmt.Errorf("dvecap: RTT matrix row %d has %d entries, want %d", i, len(row), m)
		}
		mat[i] = append([]float64(nil), row...)
	}
	c.ssMatrix = mat
	c.dirty = true
	return nil
}

// NumServers returns the number of servers added so far.
func (c *Cluster) NumServers() int { return len(c.serverIDs) }

// NumZones returns the number of zones added so far.
func (c *Cluster) NumZones() int { return len(c.zoneIDs) }

// NumClients returns the number of clients added so far.
func (c *Cluster) NumClients() int {
	if c.pre != nil {
		// Problem-wrapped clusters (Scenario adapters,
		// NewClusterFromProblemJSON) carry anonymous clients.
		return c.pre.NumClients()
	}
	return len(c.clientIDs)
}

// ServerIDs returns the server IDs in dense index order.
func (c *Cluster) ServerIDs() []string { return append([]string(nil), c.serverIDs...) }

// ZoneIDs returns the zone IDs in dense index order.
func (c *Cluster) ZoneIDs() []string { return append([]string(nil), c.zoneIDs...) }

// ClientIDs returns the client IDs in dense index order.
func (c *Cluster) ClientIDs() []string { return append([]string(nil), c.clientIDs...) }

// lookupServer resolves a server ID without error construction — the
// builder's form of the lookup resolveRTTRow takes.
func (c *Cluster) lookupServer(id string) (int, bool) {
	i, ok := c.serverIdx[id]
	return i, ok
}

// serverIndex resolves a server ID.
func (c *Cluster) serverIndex(id string) (int, error) {
	i, ok := c.serverIdx[id]
	if !ok {
		return 0, fmt.Errorf("dvecap: %w %q", ErrUnknownServer, id)
	}
	return i, nil
}

// zoneIndex resolves a zone ID.
func (c *Cluster) zoneIndex(id string) (int, error) {
	z, ok := c.zoneIdx[id]
	if !ok {
		return 0, fmt.Errorf("dvecap: %w %q", ErrUnknownZone, id)
	}
	return z, nil
}

// buildSS assembles the server↔server matrix from the full-matrix override
// or the per-pair specs, checking coverage and consistency.
func (c *Cluster) buildSS() ([][]float64, error) {
	m := len(c.serverIDs)
	if c.ssMatrix != nil {
		if len(c.ssMatrix) != m {
			return nil, fmt.Errorf("dvecap: RTT matrix covers %d servers, cluster has %d", len(c.ssMatrix), m)
		}
		out := make([][]float64, m)
		for i := range c.ssMatrix {
			out[i] = append([]float64(nil), c.ssMatrix[i]...)
		}
		return out, nil
	}
	out := make([][]float64, m)
	set := make([][]bool, m)
	for i := 0; i < m; i++ {
		out[i] = make([]float64, m)
		set[i] = make([]bool, m)
		set[i][i] = true
	}
	for i, rtts := range c.ssSpecs {
		for sid, d := range rtts {
			l, ok := c.serverIdx[sid]
			if !ok {
				return nil, fmt.Errorf("dvecap: server %q RTT: %w %q", c.serverIDs[i], ErrUnknownServer, sid)
			}
			if l == i {
				if d != 0 {
					return nil, fmt.Errorf("dvecap: server %q self-RTT %v, want 0", sid, d)
				}
				continue
			}
			if set[i][l] && out[i][l] != d {
				return nil, fmt.Errorf("dvecap: conflicting RTTs for servers %q↔%q: %v vs %v",
					c.serverIDs[i], sid, out[i][l], d)
			}
			out[i][l], out[l][i] = d, d
			set[i][l], set[l][i] = true, true
		}
	}
	for i := 0; i < m; i++ {
		for l := i + 1; l < m; l++ {
			if !set[i][l] {
				return nil, fmt.Errorf("dvecap: missing RTT between servers %q and %q (supply it on either, or use SetServerRTTs)",
					c.serverIDs[i], c.serverIDs[l])
			}
		}
	}
	return out, nil
}

// problem validates the cluster into a dense core problem, cached until
// the next mutation — the default (and legacy) build path.
func (c *Cluster) problem() (*core.Problem, error) {
	return c.problemFor(DenseDelays)
}

// problemFor validates the cluster into a core problem under the given
// delay model. The dense model builds (and caches) the full CS matrix;
// the provider models never materialize it — a CoordDelays build of a
// coordinate-native million-client cluster allocates O(clients) state.
func (c *Cluster) problemFor(model DelayModel) (*core.Problem, error) {
	if c.pre != nil {
		return wrapProblemDelays(c.pre, model)
	}
	if c.built != nil && !c.dirty && c.builtModel == model {
		return c.built, nil
	}
	k := len(c.clientIDs)
	p := &core.Problem{
		ServerCaps:  append([]float64(nil), c.caps...),
		ClientZones: make([]int, k),
		NumZones:    len(c.zoneIDs),
		ClientRT:    make([]float64, k),
		D:           c.delayBound,
	}
	ss, err := c.buildSS()
	if err != nil {
		return nil, err
	}
	p.SS = ss

	var coord *core.CoordProvider
	var shared *core.SharedRowProvider
	m := len(c.serverIDs)
	switch model {
	case DenseDelays:
		p.CS = make([][]float64, k)
	case CoordDelays:
		coord = core.NewCoordProviderFromSS(ss, 0)
		p.Delays = coord
	case SharedRowDelays:
		shared = core.NewSharedRowProvider(m)
		p.Delays = shared
	default:
		return nil, fmt.Errorf("dvecap: unknown delay model %d", model)
	}

	rowBuf := make([]float64, m)
	for j, spec := range c.clients {
		z, err := c.zoneIndex(spec.Zone)
		if err != nil {
			return nil, err
		}
		p.ClientZones[j] = z
		p.ClientRT[j] = spec.BandwidthMbps
		if spec.Coord != nil {
			if coord == nil {
				return nil, fmt.Errorf("dvecap: client %q supplies a coordinate; open the cluster WithDelayProvider(CoordDelays)", c.clientIDs[j])
			}
			srvs, vals, err := c.resolveSparseRTTs(c.clientIDs[j], spec.RTTs)
			if err != nil {
				return nil, err
			}
			coord.AddClientAt(spec.Coord, srvs, vals)
			continue
		}
		if coord != nil && spec.RTTRow == nil && len(spec.RTTs) < m {
			// Coordinate mode admits partial maps even without an explicit
			// coordinate: the coordinate is fitted from the measurements.
			srvs, vals, err := c.resolveSparseRTTs(c.clientIDs[j], spec.RTTs)
			if err != nil {
				return nil, err
			}
			coord.AddClientFitted(srvs, vals)
			continue
		}
		row, err := resolveRTTRow(c.clientIDs[j], spec, c.serverIDs, c.lookupServer, rowBuf)
		if err != nil {
			return nil, err
		}
		switch {
		case coord != nil:
			coord.AppendClient(row)
		case shared != nil:
			shared.AppendClient(row)
		default:
			p.CS[j] = append([]float64(nil), row...)
		}
	}
	if len(c.adj) > 0 {
		g := interact.New(p.NumZones)
		for key, w := range c.adj {
			if _, err := g.Set(key[0], key[1], w); err != nil {
				return nil, fmt.Errorf("dvecap: adjacency (%q,%q): %w", c.zoneIDs[key[0]], c.zoneIDs[key[1]], err)
			}
		}
		p.Adjacency = g
	}
	p.TrafficWeight = c.trafficW
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dvecap: invalid cluster: %w", err)
	}
	c.built, c.builtModel, c.dirty = p, model, false
	return p, nil
}

// problemTrafficFor is problemFor plus the run-scoped traffic options:
// WithTrafficWeight overrides the builder's weight and WithZoneAdjacency
// edges overlay the builder's graph, on a shallow copy so the builder's
// cached problem stays untouched.
func (c *Cluster) problemTrafficFor(cfg config) (*core.Problem, error) {
	p, err := c.problemFor(cfg.delayModel)
	if err != nil {
		return nil, err
	}
	if !cfg.trafficSet && len(cfg.adjEdges) == 0 {
		return p, nil
	}
	q := *p
	if cfg.trafficSet {
		if !(cfg.trafficW >= 0) || math.IsInf(cfg.trafficW, 1) { // rejects NaN too
			return nil, fmt.Errorf("dvecap: traffic weight %v, want finite >= 0", cfg.trafficW)
		}
		q.TrafficWeight = cfg.trafficW
	}
	if len(cfg.adjEdges) > 0 {
		g := p.Adjacency.Clone()
		if g == nil {
			g = interact.New(q.NumZones)
		}
		for _, e := range cfg.adjEdges {
			a, err := c.zoneIndex(e.a)
			if err != nil {
				return nil, err
			}
			b, err := c.zoneIndex(e.b)
			if err != nil {
				return nil, err
			}
			if _, err := g.Set(a, b, e.w); err != nil {
				return nil, fmt.Errorf("dvecap: adjacency (%q,%q): %w", e.a, e.b, err)
			}
		}
		q.Adjacency = g
	}
	return &q, nil
}

// resolveSparseRTTs turns a partial RTTs map into sorted-by-resolution
// sparse (server index, delay) lists for the coordinate provider. Iteration
// follows ServerIDs order so the result is deterministic.
func (c *Cluster) resolveSparseRTTs(owner string, rtts map[string]float64) ([]int32, []float64, error) {
	for sid, d := range rtts {
		if _, ok := c.serverIdx[sid]; !ok {
			return nil, nil, fmt.Errorf("dvecap: client %q RTT: %w %q", owner, ErrUnknownServer, sid)
		}
		if !(d >= 0) {
			return nil, nil, fmt.Errorf("dvecap: client %q RTT to server %q is %v ms, want >= 0", owner, sid, d)
		}
	}
	var srvs []int32
	var vals []float64
	for i, sid := range c.serverIDs {
		if d, ok := rtts[sid]; ok {
			srvs = append(srvs, int32(i))
			vals = append(vals, d)
		}
	}
	return srvs, vals, nil
}

// wrapProblemDelays adapts an already-dense problem (a Scenario world, a
// problem-JSON load) to the requested delay model by streaming its rows
// through the provider's row constructor. Dense stays as-is; the sparse
// models hold every entry as an exact override/row, so results remain
// bit-identical to the dense solve.
func wrapProblemDelays(p *core.Problem, model DelayModel) (*core.Problem, error) {
	if model == DenseDelays || p.Delays != nil {
		return p, nil
	}
	q := *p
	switch model {
	case CoordDelays:
		cp := core.NewCoordProviderFromSS(p.SS, 0)
		for j := range p.CS {
			cp.AppendClient(p.CS[j])
		}
		q.Delays = cp
	case SharedRowDelays:
		sp := core.NewSharedRowProvider(p.NumServers())
		for j := range p.CS {
			sp.AppendClient(p.CS[j])
		}
		q.Delays = sp
	default:
		return nil, fmt.Errorf("dvecap: unknown delay model %d", model)
	}
	q.CS = nil
	return &q, nil
}

// Solve runs the named two-phase algorithm ("RanZ-VirC", "RanZ-GreC",
// "GreZ-VirC", "GreZ-GreC", or the extension "DynZ-GreC") over the
// cluster's current population. See Algorithms for the accepted names and
// the Option funcs for the knobs (workers, overflow, local-search rounds,
// estimation error, seed).
func (c *Cluster) Solve(algorithm string, opts ...Option) (*Result, error) {
	cfg := resolveOptions(opts)
	tp, ok := core.ByName(algorithm)
	if !ok {
		return nil, fmt.Errorf("dvecap: unknown algorithm %q (have %v)", algorithm, Algorithms())
	}
	truth, err := c.problemTrafficFor(cfg)
	if err != nil {
		return nil, err
	}
	opt, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	rng := cfg.rngFor()
	solveP := truth
	if cfg.estSet {
		noisy, err := estimator.WithFactor(cfg.estErr).PerturbProblem(rng.Split(), truth)
		if err != nil {
			return nil, err
		}
		solveP = noisy
	}
	a, err := tp.Solve(rng.Split(), solveP, opt)
	if err != nil {
		return nil, err
	}
	if cfg.lsRounds > 0 {
		a = core.LocalSearchOpt(solveP, a, cfg.lsRounds, opt)
	}
	var ids []string
	if len(c.clientIDs) > 0 {
		ids = c.ClientIDs()
	}
	return newResult(algorithm, truth, a, core.Evaluate(truth, a), ids), nil
}

// Open solves the cluster's current population once and returns a session
// that keeps the solution repaired in O(affected) per event — clients
// joining, leaving, moving and refreshing their measured delays by ID —
// instead of re-running the full algorithm after every change (DESIGN.md
// §7). The session snapshots the cluster; mutating the builder afterwards
// does not affect it. WithDriftGuard and WithImbalanceGuard arm the
// automatic re-solve; WithDurability makes the session crash-recoverable
// (and, when the directory already holds state, RECOVERS the stored
// session instead of solving this cluster — see the option's doc).
func (c *Cluster) Open(algorithm string, opts ...Option) (*ClusterSession, error) {
	cfg := resolveOptions(opts)
	if cfg.durDir != "" {
		return c.openDurable(algorithm, cfg)
	}
	return c.openSession(algorithm, cfg)
}

// openSession is the non-durable (and fresh-durable) construction path.
func (c *Cluster) openSession(algorithm string, cfg config) (*ClusterSession, error) {
	tp, ok := core.ByName(algorithm)
	if !ok {
		return nil, fmt.Errorf("dvecap: unknown algorithm %q (have %v)", algorithm, Algorithms())
	}
	p, err := c.problemTrafficFor(cfg)
	if err != nil {
		return nil, err
	}
	opt, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	pl, err := repair.New(repair.Config{
		Algo:            tp,
		Opt:             opt,
		DriftPQoS:       cfg.drift,
		DriftUtilSpread: cfg.spread,
	}, p, cfg.rngFor().Split())
	if err != nil {
		return nil, err
	}
	ids := c.clientIDs
	if ids == nil && p.NumClients() > 0 {
		// Scenario-adapter clusters carry a prebuilt problem with anonymous
		// clients; name them by dense index.
		ids = make([]string, p.NumClients())
		for j := range ids {
			ids[j] = fmt.Sprintf("c%d", j)
		}
	}
	binding, err := repair.NewIDBinding(pl, ids)
	if err != nil {
		return nil, err
	}
	if err := binding.NameTopology(c.serverIDs, c.zoneIDs); err != nil {
		return nil, err
	}
	if cfg.tele != nil {
		pl.SetTelemetry(cfg.tele)
	}
	return &ClusterSession{
		binding:     binding,
		algo:        algorithm,
		delayBound:  p.D,
		rowBuf:      make([]float64, p.NumServers()),
		overflow:    cfg.overflow,
		driftPQoS:   cfg.drift,
		driftSpread: cfg.spread,
		tracer:      telemetry.NewTracer(cfg.traceW),
		tele:        cfg.tele,
	}, nil
}

// clusterFromProblem wraps an already-validated problem (a Scenario
// world's snapshot) as a Cluster with synthetic IDs: servers "s0"…,
// zones "z0"…, clients named by dense index on demand. The Scenario
// facade runs its Assign and StartSession paths through this view, so
// every solve surface converges on the Cluster engine.
func clusterFromProblem(p *core.Problem) *Cluster {
	c := &Cluster{delayBound: p.D, pre: p}
	m, n := p.NumServers(), p.NumZones
	c.serverIDs = make([]string, m)
	c.serverIdx = make(map[string]int, m)
	for i := 0; i < m; i++ {
		id := fmt.Sprintf("s%d", i)
		c.serverIDs[i], c.serverIdx[id] = id, i
	}
	c.zoneIDs = make([]string, n)
	c.zoneIdx = make(map[string]int, n)
	for z := 0; z < n; z++ {
		id := fmt.Sprintf("z%d", z)
		c.zoneIDs[z], c.zoneIdx[id] = id, z
	}
	return c
}
