package estimator

import (
	"fmt"
	"sort"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/xrand"
)

// StructuredKing models the *mechanism* of King (Gummadi et al.) rather
// than just its error magnitude: King estimates the latency between two
// end hosts as the measured latency between DNS name servers close to
// each of them. We pick, for every topology node, a "resolver" node in the
// same AS (falling back to the node itself when the AS has no other
// nodes), and report RTT(resolverOf(a), resolverOf(b)) plus a small
// measurement jitter as the estimate of RTT(a, b).
//
// Unlike the uniform-factor Model, the resulting error is structured: it
// is small when resolvers sit near their hosts (intra-AS distances are
// short) and correlated across clients that share a resolver — exactly the
// error profile delay-estimation services exhibit in practice.
type StructuredKing struct {
	// JitterFactor adds multiplicative measurement noise to the proxy
	// path's RTT, uniform in [1/f, f]; 1 disables it. King's published
	// accuracy corresponds to small factors (~1.1).
	JitterFactor float64
}

// NewStructuredKing returns the model with King-like jitter.
func NewStructuredKing() StructuredKing {
	return StructuredKing{JitterFactor: 1.1}
}

// EstimateProblem builds the problem an operator using King would see for
// the world's current population: client-server delays are resolver-pair
// measurements; inter-server delays are assumed measured directly (the
// operator owns both endpoints).
func (k StructuredKing) EstimateProblem(rng *xrand.RNG, w *dve.World) (*core.Problem, error) {
	if k.JitterFactor < 1 {
		return nil, fmt.Errorf("estimator: JitterFactor %v, want >= 1", k.JitterFactor)
	}
	truth := w.Problem()
	resolver := assignResolvers(rng, w)
	jitter := Model{Factor: k.JitterFactor}

	cs := make([][]float64, truth.NumClients())
	for j := range cs {
		cs[j] = make([]float64, truth.NumServers())
		cn := w.ClientNodes[j]
		for i := range cs[j] {
			sn := w.ServerNodes[i]
			proxy := w.Delays.RTT(resolver[cn], resolver[sn])
			cs[j][i] = jitter.estimate(rng, proxy)
		}
	}
	// cs is freshly built and truth.SS is never mutated downstream, so the
	// zero-copy variant is safe here and avoids duplicating the matrices.
	return truth.WithDelaysOwned(cs, truth.SS), nil
}

// assignResolvers picks each node's name-server proxy: a deterministic
// random member of its AS.
func assignResolvers(rng *xrand.RNG, w *dve.World) []int {
	n := w.Topo.N()
	resolver := make([]int, n)
	byAS := map[int][]int{}
	for _, node := range w.Topo.Nodes {
		byAS[node.AS] = append(byAS[node.AS], node.ID)
	}
	// One resolver per AS keeps the error correlated within a region, as
	// shared resolvers do in reality. Draw in sorted AS order so the
	// result is a deterministic function of the seed.
	ases := make([]int, 0, len(byAS))
	for as := range byAS {
		ases = append(ases, as)
	}
	sort.Ints(ases)
	asResolver := map[int]int{}
	for _, as := range ases {
		members := byAS[as]
		asResolver[as] = members[rng.IntN(len(members))]
	}
	for id, node := range w.Topo.Nodes {
		resolver[id] = asResolver[node.AS]
	}
	return resolver
}
