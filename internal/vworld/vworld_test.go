package vworld

import (
	"math"
	"testing"
	"testing/quick"

	"dvecap/internal/xrand"
)

func testMap(t *testing.T) *Map {
	t.Helper()
	m, err := NewMap(1000, 800, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMapValidates(t *testing.T) {
	bad := [][4]float64{
		{0, 100, 2, 2},
		{100, -1, 2, 2},
		{100, 100, 0, 2},
		{100, 100, 2, -1},
	}
	for i, c := range bad {
		if _, err := NewMap(c[0], c[1], int(c[2]), int(c[3])); err == nil {
			t.Errorf("bad map %d accepted", i)
		}
	}
}

func TestZoneAtGrid(t *testing.T) {
	m := testMap(t)
	if m.Zones() != 80 {
		t.Fatalf("zones = %d", m.Zones())
	}
	cases := []struct {
		x, y float64
		want int
	}{
		{0, 0, 0},
		{99, 99, 0},
		{100, 0, 1},          // second column
		{0, 100, 10},         // second row
		{999.9, 799.9, 79},   // last zone
		{1000, 800, 79},      // clamped edge
		{-5, -5, 0},          // clamped negative
		{550, 350, 3*10 + 5}, // middle
	}
	for _, tc := range cases {
		if got := m.ZoneAt(tc.x, tc.y); got != tc.want {
			t.Fatalf("ZoneAt(%v,%v) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestZoneCenterRoundTrips(t *testing.T) {
	m := testMap(t)
	for z := 0; z < m.Zones(); z++ {
		x, y := m.ZoneCenter(z)
		if got := m.ZoneAt(x, y); got != z {
			t.Fatalf("centre of zone %d maps to %d", z, got)
		}
	}
}

func TestNeighbors(t *testing.T) {
	m := testMap(t)
	// Corner zone 0: right and down only.
	n := m.Neighbors(0)
	if len(n) != 2 {
		t.Fatalf("corner neighbours = %v", n)
	}
	// Interior zone: 4 neighbours.
	if n := m.Neighbors(15); len(n) != 4 {
		t.Fatalf("interior neighbours = %v", n)
	}
	// Neighbour relation is symmetric.
	for z := 0; z < m.Zones(); z++ {
		for _, nb := range m.Neighbors(z) {
			back := false
			for _, nb2 := range m.Neighbors(nb) {
				if nb2 == z {
					back = true
				}
			}
			if !back {
				t.Fatalf("neighbour relation asymmetric: %d → %d", z, nb)
			}
		}
	}
}

func defaultCfg(n int) Config {
	return Config{Avatars: n, MinSpeed: 5, MaxSpeed: 15, PauseMeanSec: 2}
}

func TestNewWorldPlacesWithinBounds(t *testing.T) {
	m := testMap(t)
	w, err := NewWorld(xrand.New(1), m, defaultCfg(500))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range w.Avatars {
		if a.X < 0 || a.X > m.Width || a.Y < 0 || a.Y > m.Height {
			t.Fatalf("avatar %d out of bounds: (%v,%v)", i, a.X, a.Y)
		}
		if a.Speed < 5 || a.Speed > 15 {
			t.Fatalf("avatar %d speed %v", i, a.Speed)
		}
	}
	if len(w.ZoneVector()) != 500 {
		t.Fatal("zone vector length wrong")
	}
}

func TestNewWorldValidates(t *testing.T) {
	m := testMap(t)
	bad := []Config{
		{Avatars: -1, MinSpeed: 1, MaxSpeed: 2},
		{Avatars: 1, MinSpeed: 0, MaxSpeed: 2},
		{Avatars: 1, MinSpeed: 3, MaxSpeed: 2},
		{Avatars: 1, MinSpeed: 1, MaxSpeed: 2, PauseMeanSec: -1},
		{Avatars: 1, MinSpeed: 1, MaxSpeed: 2, HotBias: 0.5},
		{Avatars: 1, MinSpeed: 1, MaxSpeed: 2, HotBias: 1.0, HotZones: []int{0}},
		{Avatars: 1, MinSpeed: 1, MaxSpeed: 2, Groups: -1},
		{Avatars: 1, MinSpeed: 1, MaxSpeed: 2, GroupBias: 0.5},
		{Avatars: 1, MinSpeed: 1, MaxSpeed: 2, Groups: 2, GroupBias: 1.0},
	}
	for i, c := range bad {
		if _, err := NewWorld(xrand.New(1), m, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStepMovesAvatarsAndStaysInBounds(t *testing.T) {
	m := testMap(t)
	w, _ := NewWorld(xrand.New(2), m, defaultCfg(200))
	before := make([][2]float64, len(w.Avatars))
	for i, a := range w.Avatars {
		before[i] = [2]float64{a.X, a.Y}
	}
	for step := 0; step < 100; step++ {
		w.Step(1.0)
		for i, a := range w.Avatars {
			if a.X < -1e-9 || a.X > m.Width+1e-9 || a.Y < -1e-9 || a.Y > m.Height+1e-9 {
				t.Fatalf("avatar %d escaped: (%v,%v)", i, a.X, a.Y)
			}
		}
	}
	movedAny := false
	for i, a := range w.Avatars {
		if a.X != before[i][0] || a.Y != before[i][1] {
			movedAny = true
			break
		}
	}
	if !movedAny {
		t.Fatal("no avatar moved in 100 seconds")
	}
}

func TestStepReportsZoneCrossings(t *testing.T) {
	m := testMap(t)
	w, _ := NewWorld(xrand.New(3), m, defaultCfg(300))
	zonesBefore := w.ZoneVector()
	crossings := 0
	for step := 0; step < 60; step++ {
		moved := w.Step(1.0)
		for _, i := range moved {
			crossings++
			_ = i
		}
	}
	zonesAfter := w.ZoneVector()
	changed := 0
	for i := range zonesBefore {
		if zonesBefore[i] != zonesAfter[i] {
			changed++
		}
	}
	if crossings == 0 {
		t.Fatal("no zone crossings in 60 seconds of movement")
	}
	if changed == 0 {
		t.Fatal("crossings reported but no zones changed")
	}
}

func TestStepMovementRespectsSpeed(t *testing.T) {
	m := testMap(t)
	w, _ := NewWorld(xrand.New(4), m, Config{Avatars: 50, MinSpeed: 10, MaxSpeed: 10})
	before := make([][2]float64, len(w.Avatars))
	for i, a := range w.Avatars {
		before[i] = [2]float64{a.X, a.Y}
	}
	dt := 0.5
	w.Step(dt)
	for i, a := range w.Avatars {
		dx, dy := a.X-before[i][0], a.Y-before[i][1]
		d := math.Sqrt(dx*dx + dy*dy)
		// Per straight leg the displacement cannot exceed speed×dt; a
		// waypoint turn mid-step can only shorten the net displacement.
		if d > 10*dt+1e-9 {
			t.Fatalf("avatar %d moved %v in %vs at speed 10", i, d, dt)
		}
	}
}

func TestHotBiasConcentratesAvatars(t *testing.T) {
	m := testMap(t)
	hot := []int{0, 1, 2, 3}
	cfg := defaultCfg(4000)
	cfg.HotZones = hot
	cfg.HotBias = 0.6
	w, err := NewWorld(xrand.New(5), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop := w.Populations()
	hotPop := 0
	for _, z := range hot {
		hotPop += pop[z]
	}
	// 4 of 80 zones hold 60% + 4/80×40% ≈ 62% of avatars in expectation.
	frac := float64(hotPop) / 4000
	if frac < 0.5 {
		t.Fatalf("hot zones hold only %.0f%%", frac*100)
	}
}

func TestWorldDeterministic(t *testing.T) {
	m := testMap(t)
	run := func() []int {
		w, _ := NewWorld(xrand.New(9), m, defaultCfg(100))
		for i := 0; i < 30; i++ {
			w.Step(1)
		}
		return w.ZoneVector()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("avatar %d zone differs across identical runs", i)
		}
	}
}

// groupDispersion returns the mean distance of avatars to their group
// centroid (all avatars form one group when w has none).
func groupDispersion(w *World, groups int) float64 {
	if groups < 1 {
		groups = 1
	}
	cx := make([]float64, groups)
	cy := make([]float64, groups)
	n := make([]int, groups)
	gof := func(i int) int {
		if g := w.GroupOf(i); g >= 0 {
			return g
		}
		return 0
	}
	for i, a := range w.Avatars {
		g := gof(i)
		cx[g] += a.X
		cy[g] += a.Y
		n[g]++
	}
	sum, k := 0.0, 0
	for i, a := range w.Avatars {
		g := gof(i)
		dx, dy := a.X-cx[g]/float64(n[g]), a.Y-cy[g]/float64(n[g])
		sum += math.Sqrt(dx*dx + dy*dy)
		k++
	}
	return sum / float64(k)
}

func TestGroupMovementCorrelates(t *testing.T) {
	m := testMap(t)
	run := func(cfg Config) float64 {
		w, err := NewWorld(xrand.New(11), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			w.Step(1.0)
		}
		return groupDispersion(w, cfg.Groups)
	}
	grouped := defaultCfg(400)
	grouped.Groups = 8
	grouped.GroupBias = 0.95
	loose := defaultCfg(400)
	dg, dl := run(grouped), run(loose)
	// Followers rally within one zone-size box of their leader's waypoint;
	// members mid-excursion or chasing a relocated anchor keep the cluster
	// loose, but within-group dispersion must still sit well below the
	// uniform baseline.
	if dg >= 0.75*dl {
		t.Fatalf("grouped dispersion %.1f not below 75%% of ungrouped %.1f", dg, dl)
	}
	// Groups are assigned round-robin and leaders are the first members.
	for i := 0; i < 16; i++ {
		w, _ := NewWorld(xrand.New(1), m, grouped)
		if got := w.GroupOf(i); got != i%8 {
			t.Fatalf("GroupOf(%d) = %d, want %d", i, got, i%8)
		}
	}
}

func TestStepCrossingsMatchesStep(t *testing.T) {
	m := testMap(t)
	cfg := defaultCfg(250)
	cfg.Groups = 5
	cfg.GroupBias = 0.7
	wa, _ := NewWorld(xrand.New(6), m, cfg)
	wb, _ := NewWorld(xrand.New(6), m, cfg)
	total := 0
	for step := 0; step < 60; step++ {
		beforeZones := wa.ZoneVector()
		cs := wa.StepCrossings(1.0)
		moved := wb.Step(1.0)
		if len(cs) != len(moved) {
			t.Fatalf("step %d: %d crossings vs %d moved", step, len(cs), len(moved))
		}
		for k, c := range cs {
			if c.Avatar != moved[k] {
				t.Fatalf("step %d: crossing %d is avatar %d, Step reports %d", step, k, c.Avatar, moved[k])
			}
			if c.From == c.To {
				t.Fatalf("step %d: degenerate crossing %+v", step, c)
			}
			if c.From != beforeZones[c.Avatar] {
				t.Fatalf("step %d: crossing From = %d, avatar was in %d", step, c.From, beforeZones[c.Avatar])
			}
			if got := wa.ZoneOf(c.Avatar); got != c.To {
				t.Fatalf("step %d: crossing To = %d, avatar now in %d", step, c.To, got)
			}
		}
		total += len(cs)
	}
	if total == 0 {
		t.Fatal("no crossings in 60 seconds of grouped movement")
	}
	// Both worlds consumed identical randomness: same final state.
	za, zb := wa.ZoneVector(), wb.ZoneVector()
	for i := range za {
		if za[i] != zb[i] {
			t.Fatalf("avatar %d diverged between Step and StepCrossings", i)
		}
	}
}

func TestZoneAtAlwaysInRangeProperty(t *testing.T) {
	m := testMap(t)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		z := m.ZoneAt(x, y)
		return z >= 0 && z < m.Zones()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
