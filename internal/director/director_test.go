package director

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dvecap/internal/core"
	"dvecap/internal/topology"
	"dvecap/internal/xrand"
)

func testDirector(t *testing.T) *Director {
	t.Helper()
	g, err := topology.Waxman(xrand.New(5), topology.DefaultWaxman(40))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		ServerNodes:  []int{0, 10, 20, 30},
		ServerCaps:   []float64{50, 50, 50, 50},
		Zones:        8,
		Delays:       dm,
		DelayBoundMs: 250,
		FrameRate:    25,
		MessageBytes: 100,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	g, _ := topology.Waxman(xrand.New(1), topology.DefaultWaxman(10))
	dm, _ := topology.NewDelayMatrix(g, 500, 0.5)
	base := Config{
		ServerNodes: []int{0, 1}, ServerCaps: []float64{10, 10},
		Zones: 2, Delays: dm, DelayBoundMs: 250, FrameRate: 25, MessageBytes: 100,
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.ServerNodes = nil },
		func(c *Config) { c.ServerCaps = c.ServerCaps[:1] },
		func(c *Config) { c.Zones = 0 },
		func(c *Config) { c.Delays = nil },
		func(c *Config) { c.DelayBoundMs = 0 },
		func(c *Config) { c.FrameRate = 0 },
		func(c *Config) { c.MessageBytes = 0 },
		func(c *Config) { c.ServerNodes = []int{0, 99} },
		func(c *Config) { c.ServerCaps = []float64{10, -1} },
	}
	for i, f := range bad {
		c := base
		c.ServerNodes = append([]int(nil), base.ServerNodes...)
		c.ServerCaps = append([]float64(nil), base.ServerCaps...)
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewRejectsUnknownAlgorithm(t *testing.T) {
	g, _ := topology.Waxman(xrand.New(1), topology.DefaultWaxman(10))
	dm, _ := topology.NewDelayMatrix(g, 500, 0.5)
	_, err := New(Config{
		ServerNodes: []int{0}, ServerCaps: []float64{10},
		Zones: 1, Delays: dm, DelayBoundMs: 250, FrameRate: 25, MessageBytes: 100,
		Algorithm: "made-up",
	})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestJoinLookupLeave(t *testing.T) {
	d := testDirector(t)
	info, err := d.Join("alice", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "alice" || info.Zone != 3 {
		t.Fatalf("info = %+v", info)
	}
	if info.Target != d.planner().ZoneHost(3) {
		t.Fatalf("target %d, want zone 3's server %d", info.Target, d.planner().ZoneHost(3))
	}
	got, err := d.Lookup("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("lookup %+v != join %+v", got, info)
	}
	if err := d.Leave("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("alice"); err == nil {
		t.Fatal("lookup after leave succeeded")
	}
	if err := d.Leave("alice"); err == nil {
		t.Fatal("double leave succeeded")
	}
}

func TestJoinGeneratesIDs(t *testing.T) {
	d := testDirector(t)
	a, _ := d.Join("", 1, 0)
	b, _ := d.Join("", 2, 1)
	if a.ID == "" || a.ID == b.ID {
		t.Fatalf("generated IDs broken: %q vs %q", a.ID, b.ID)
	}
}

func TestJoinValidation(t *testing.T) {
	d := testDirector(t)
	if _, err := d.Join("x", -1, 0); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := d.Join("x", 0, 99); err == nil {
		t.Fatal("out-of-range zone accepted")
	}
	if _, err := d.Join("dup", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Join("dup", 1, 1); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestMoveChangesTargetZone(t *testing.T) {
	d := testDirector(t)
	d.Join("bob", 7, 0)
	info, err := d.Move("bob", 5)
	if err != nil {
		t.Fatal(err)
	}
	if info.Zone != 5 {
		t.Fatalf("zone = %d", info.Zone)
	}
	if info.Target != d.planner().ZoneHost(5) {
		t.Fatal("target not updated on move")
	}
	if _, err := d.Move("ghost", 1); err == nil {
		t.Fatal("moving unknown client succeeded")
	}
}

func TestStatsAndReassign(t *testing.T) {
	d := testDirector(t)
	rng := xrand.New(33)
	for i := 0; i < 120; i++ {
		if _, err := d.Join("", rng.IntN(40), rng.IntN(8)); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats()
	if before.Clients != 120 {
		t.Fatalf("clients = %d", before.Clients)
	}
	if before.PQoS < 0 || before.PQoS > 1 {
		t.Fatalf("pQoS = %v", before.PQoS)
	}
	res, err := d.Reassign()
	if err != nil {
		t.Fatal(err)
	}
	if res.PQoS < before.PQoS-1e-9 {
		t.Fatalf("reassign degraded pQoS: %v → %v", before.PQoS, res.PQoS)
	}
	if res.Clients != 120 {
		t.Fatalf("reassign clients = %d", res.Clients)
	}
}

func TestStatsExposeRepairCounters(t *testing.T) {
	d := testDirector(t)
	rng := xrand.New(44)
	ids := make([]string, 0, 60)
	for i := 0; i < 60; i++ {
		info, err := d.Join("", rng.IntN(40), rng.IntN(8))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for i := 0; i < 10; i++ {
		if _, err := d.Move(ids[i], rng.IntN(8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Leave(ids[20]); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RepairEvents != 60+10+1 {
		t.Fatalf("repair events = %d, want 71", s.RepairEvents)
	}
	if s.FullSolves != 0 {
		t.Fatalf("full solves = %d before any Reassign", s.FullSolves)
	}
	if _, err := d.Reassign(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().FullSolves; got != 1 {
		t.Fatalf("full solves = %d after Reassign, want 1", got)
	}
	// The planner's O(1) metrics must agree with a from-scratch evaluation
	// of the exported problem + assignment.
	d.mu.RLock()
	p, a := d.problemLocked(), d.assignmentLocked()
	d.mu.RUnlock()
	m := core.Evaluate(p, a)
	s = d.Stats()
	if s.WithQoS != m.WithQoS {
		t.Fatalf("stats withQoS = %d, evaluation gives %d", s.WithQoS, m.WithQoS)
	}
	if diff := s.Utilization - m.Utilization; diff > 1e-7 || diff < -1e-7 {
		t.Fatalf("stats utilization = %v, evaluation gives %v", s.Utilization, m.Utilization)
	}
}

func TestDriftGuardTriggersAutomaticFullSolve(t *testing.T) {
	g, err := topology.Waxman(xrand.New(5), topology.DefaultWaxman(40))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// A tight bound guarantees the empty-world baseline (pQoS 1) decays as
	// clients join, so the armed guard must fire: this pins the
	// Config.DriftPQoS → planner wiring, not just planner behavior.
	d, err := New(Config{
		ServerNodes:  []int{0, 10, 20, 30},
		ServerCaps:   []float64{50, 50, 50, 50},
		Zones:        8,
		Delays:       dm,
		DelayBoundMs: 60,
		FrameRate:    25,
		MessageBytes: 100,
		Seed:         1,
		DriftPQoS:    0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(46)
	for i := 0; i < 300; i++ {
		if _, err := d.Join("", rng.IntN(40), rng.IntN(8)); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.PQoS > 1-0.05 {
		t.Fatalf("scenario not tight enough to exercise the guard: %+v", s)
	}
	if s.FullSolves < 1 {
		t.Fatalf("armed drift guard never fired a full solve: %+v", s)
	}
	// After each guard-fired solve the baseline re-anchors, so drift stays
	// bounded near the threshold instead of growing without limit.
	if s.LastDriftPQoS > 0.05+0.01 {
		t.Fatalf("drift not re-anchored after guard fired: %+v", s)
	}
	if s.RepairEvents != 300 {
		t.Fatalf("inconsistent stats: %+v", s)
	}
	cfgBad := Config{
		ServerNodes: []int{0}, ServerCaps: []float64{10},
		Zones: 1, Delays: dm, DelayBoundMs: 250, FrameRate: 25, MessageBytes: 100,
		DriftPQoS: -1,
	}
	if err := cfgBad.Validate(); err == nil {
		t.Fatal("negative DriftPQoS accepted")
	}
}

func TestReassignEmptyDirector(t *testing.T) {
	d := testDirector(t)
	res, err := d.Reassign()
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 0 {
		t.Fatalf("empty reassign clients = %d", res.Clients)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	d := testDirector(t)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	c := NewClient(srv.URL)

	info, err := c.Join("carol", 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "carol" {
		t.Fatalf("info = %+v", info)
	}
	got, err := c.Lookup("carol")
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("lookup mismatch: %+v vs %+v", got, info)
	}
	moved, err := c.Move("carol", 6)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Zone != 6 {
		t.Fatalf("moved zone = %d", moved.Zone)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clients != 1 {
		t.Fatalf("stats clients = %d", stats.Clients)
	}
	re, err := c.Reassign()
	if err != nil {
		t.Fatal(err)
	}
	if re.Clients != 1 {
		t.Fatalf("reassign clients = %d", re.Clients)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].ID != "carol" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if err := c.Leave("carol"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("carol"); err == nil {
		t.Fatal("lookup after leave succeeded over HTTP")
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	d := testDirector(t)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	c := NewClient(srv.URL)

	if _, err := c.Lookup("nobody"); err == nil {
		t.Fatal("lookup of unknown client succeeded")
	}
	if err := c.Leave("nobody"); err == nil {
		t.Fatal("leave of unknown client succeeded")
	}
	if _, err := c.Move("nobody", 1); err == nil {
		t.Fatal("move of unknown client succeeded")
	}
	if _, err := c.Join("bad", 0, 999); err == nil {
		t.Fatal("join with bad zone succeeded")
	}
}

func TestAttachPrefersForwardingWhenDirectMissesBound(t *testing.T) {
	// Hand-built delay matrix: node 0 and 1 are servers, client at node 2
	// is 400ms from server 0 (its target) but 100ms from server 1, and the
	// servers are 100ms apart (discounted to 50): forwarded delay 150.
	rtt := [][]float64{
		{0, 100, 400},
		{100, 0, 100},
		{400, 100, 0},
	}
	dm, err := topology.NewDelayMatrixFromRTT(rtt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		ServerNodes:  []int{0, 1},
		ServerCaps:   []float64{100, 100},
		Zones:        1,
		Delays:       dm,
		DelayBoundMs: 250,
		FrameRate:    25,
		MessageBytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Zone 0's round-robin target is server 0.
	info, err := d.Join("far", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Target != 0 {
		t.Fatalf("target = %d", info.Target)
	}
	if info.Contact != 1 {
		t.Fatalf("contact = %d, want forwarding via server 1", info.Contact)
	}
	if !info.QoS {
		t.Fatalf("forwarded client should have QoS: %+v", info)
	}
	if info.DelayMs != 150 {
		t.Fatalf("delay = %v, want 150", info.DelayMs)
	}
}

func TestProblemSnapshotEndpoint(t *testing.T) {
	d := testDirector(t)
	rng := xrand.New(70)
	for i := 0; i < 30; i++ {
		if _, err := d.Join("", rng.IntN(40), rng.IntN(8)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/problem")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	p, err := core.ReadProblemJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClients() != 30 || p.NumZones != 8 || p.NumServers() != 4 {
		t.Fatalf("snapshot shape: %d/%d/%d", p.NumClients(), p.NumZones, p.NumServers())
	}
	// The snapshot must be solvable offline end to end.
	a, err := core.GreZGreC.Solve(xrand.New(1), p, core.Options{Overflow: core.SpillLargestResidual})
	if err != nil {
		t.Fatal(err)
	}
	if m := core.Evaluate(p, a); m.PQoS < 0 || m.PQoS > 1 {
		t.Fatalf("pQoS %v", m.PQoS)
	}
}

// TestHTTPStatusCodes pins the status-code discipline of every /v1 route:
// 405 for a known route with the wrong method, 400 for malformed or
// invalid bodies, 404 for unknown clients (sentinel-driven, not message
// sniffing) and unknown routes.
func TestHTTPStatusCodes(t *testing.T) {
	d := testDirector(t)
	if _, err := d.Join("alice", 12, 2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"healthz ok", http.MethodGet, "/v1/healthz", "", http.StatusOK},
		{"stats wrong method", http.MethodPost, "/v1/stats", "", http.StatusMethodNotAllowed},
		{"problem wrong method", http.MethodPost, "/v1/problem", "", http.StatusMethodNotAllowed},
		{"reassign wrong method", http.MethodGet, "/v1/reassign", "", http.StatusMethodNotAllowed},
		{"clients wrong method", http.MethodDelete, "/v1/clients", "", http.StatusMethodNotAllowed},
		{"join malformed json", http.MethodPost, "/v1/clients", "{", http.StatusBadRequest},
		{"join invalid zone", http.MethodPost, "/v1/clients", `{"node":0,"zone":999}`, http.StatusBadRequest},
		{"join invalid node", http.MethodPost, "/v1/clients", `{"node":-1,"zone":0}`, http.StatusBadRequest},
		{"join duplicate id", http.MethodPost, "/v1/clients", `{"id":"alice","node":0,"zone":0}`, http.StatusBadRequest},
		{"missing client id", http.MethodGet, "/v1/clients/", "", http.StatusBadRequest},
		{"lookup unknown client", http.MethodGet, "/v1/clients/nobody", "", http.StatusNotFound},
		{"lookup wrong method", http.MethodPost, "/v1/clients/alice", "", http.StatusMethodNotAllowed},
		{"delete unknown client", http.MethodDelete, "/v1/clients/nobody", "", http.StatusNotFound},
		{"move unknown client", http.MethodPost, "/v1/clients/nobody/move", `{"zone":1}`, http.StatusNotFound},
		{"move invalid zone", http.MethodPost, "/v1/clients/alice/move", `{"zone":999}`, http.StatusBadRequest},
		{"move malformed json", http.MethodPost, "/v1/clients/alice/move", "{", http.StatusBadRequest},
		{"move wrong method", http.MethodGet, "/v1/clients/alice/move", "", http.StatusMethodNotAllowed},
		{"delays unknown client", http.MethodPost, "/v1/clients/nobody/delays", `{"rtts_ms":[1,2,3,4]}`, http.StatusNotFound},
		{"delays wrong row length", http.MethodPost, "/v1/clients/alice/delays", `{"rtts_ms":[1]}`, http.StatusBadRequest},
		{"delays negative rtt", http.MethodPost, "/v1/clients/alice/delays", `{"rtts_ms":[-1,2,3,4]}`, http.StatusBadRequest},
		{"delays malformed json", http.MethodPost, "/v1/clients/alice/delays", "{", http.StatusBadRequest},
		{"delays wrong method", http.MethodGet, "/v1/clients/alice/delays", "", http.StatusMethodNotAllowed},
		{"unknown client subroute", http.MethodGet, "/v1/clients/alice/bogus", "", http.StatusNotFound},
		{"unknown route", http.MethodGet, "/v1/bogus", "", http.StatusNotFound},
		{"servers list ok", http.MethodGet, "/v1/servers", "", http.StatusOK},
		{"servers wrong method", http.MethodPut, "/v1/servers", "", http.StatusMethodNotAllowed},
		{"add server malformed json", http.MethodPost, "/v1/servers", "{", http.StatusBadRequest},
		{"add server bad node", http.MethodPost, "/v1/servers", `{"node":-1,"capacity_mbps":10}`, http.StatusBadRequest},
		{"add server bad capacity", http.MethodPost, "/v1/servers", `{"node":0,"capacity_mbps":0}`, http.StatusBadRequest},
		{"delete server non-integer", http.MethodDelete, "/v1/servers/abc", "", http.StatusBadRequest},
		{"delete unknown server", http.MethodDelete, "/v1/servers/99", "", http.StatusNotFound},
		{"delete loaded server", http.MethodDelete, "/v1/servers/0", "", http.StatusConflict},
		{"delete server wrong method", http.MethodGet, "/v1/servers/0", "", http.StatusMethodNotAllowed},
		{"drain unknown server", http.MethodPost, "/v1/servers/99/drain", "", http.StatusNotFound},
		{"drain wrong method", http.MethodGet, "/v1/servers/0/drain", "", http.StatusMethodNotAllowed},
		{"uncordon unknown server", http.MethodPost, "/v1/servers/99/uncordon", "", http.StatusNotFound},
		{"unknown server subroute", http.MethodPost, "/v1/servers/0/bogus", "", http.StatusNotFound},
		{"zones list ok", http.MethodGet, "/v1/zones", "", http.StatusOK},
		{"zones wrong method", http.MethodDelete, "/v1/zones", "", http.StatusMethodNotAllowed},
		{"delete zone non-integer", http.MethodDelete, "/v1/zones/abc", "", http.StatusBadRequest},
		{"delete unknown zone", http.MethodDelete, "/v1/zones/99", "", http.StatusNotFound},
		{"delete populated zone", http.MethodDelete, "/v1/zones/2", "", http.StatusConflict},
		{"delete zone wrong method", http.MethodGet, "/v1/zones/2", "", http.StatusMethodNotAllowed},
		{"adjacency list ok", http.MethodGet, "/v1/adjacency", "", http.StatusOK},
		{"adjacency wrong method", http.MethodDelete, "/v1/adjacency", "", http.StatusMethodNotAllowed},
		{"adjacency malformed json", http.MethodPost, "/v1/adjacency", "{", http.StatusBadRequest},
		{"adjacency unknown zone", http.MethodPost, "/v1/adjacency", `{"zone1":0,"zone2":99,"weight_mbps":1}`, http.StatusNotFound},
		{"adjacency self edge", http.MethodPost, "/v1/adjacency", `{"zone1":3,"zone2":3,"weight_mbps":1}`, http.StatusBadRequest},
		{"adjacency negative weight", http.MethodPost, "/v1/adjacency", `{"zone1":0,"zone2":1,"weight_mbps":-1}`, http.StatusBadRequest},
		{"adjacency add wrong method", http.MethodGet, "/v1/adjacency/add", "", http.StatusMethodNotAllowed},
		{"adjacency add zero delta", http.MethodPost, "/v1/adjacency/add", `{"zone1":0,"zone2":1,"delta_mbps":0}`, http.StatusBadRequest},
		{"adjacency add unknown zone", http.MethodPost, "/v1/adjacency/add", `{"zone1":-1,"zone2":1,"delta_mbps":1}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
			// Error responses produced by the handler carry a JSON body with
			// an "error" field (the mux's own unknown-route 404 is plain text).
			if tc.want >= 400 && resp.Header.Get("Content-Type") == "application/json" {
				var ae struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
					t.Fatalf("%s %s: malformed error body (decode err %v)", tc.method, tc.path, err)
				}
			}
		})
	}

	// The probe traffic above must not have mutated state: the director
	// still holds exactly the one seeded client.
	if st := d.Stats(); st.Clients != 1 {
		t.Fatalf("error-path probes changed population: %d clients", st.Clients)
	}
}

// TestHTTPDelaysRoundTrip drives POST /v1/clients/{id}/delays through the
// Go binding and asserts the acceptance property of the endpoint: the
// refresh is applied (the client's delay reflects the posted row, and
// Lookup agrees) by the incremental repair path — delay_updates
// increments, full_solves does not.
func TestHTTPDelaysRoundTrip(t *testing.T) {
	d := testDirector(t)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	c := NewClient(srv.URL)

	if _, err := c.Join("alice", 12, 2); err != nil {
		t.Fatal(err)
	}
	before, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// A uniform row keeps the expectation exact: every contact choice
	// yields a direct 42 ms attach, well inside the 250 ms bound.
	rtts := []float64{42, 42, 42, 42}
	info, err := c.UpdateDelays("alice", rtts)
	if err != nil {
		t.Fatal(err)
	}
	if info.DelayMs != 42 || !info.QoS {
		t.Fatalf("after refresh: %+v, want direct 42 ms in bound", info)
	}
	got, err := c.Lookup("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("lookup disagrees with update response: %+v vs %+v", got, info)
	}

	after, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.DelayUpdates != before.DelayUpdates+1 {
		t.Fatalf("delay_updates %d → %d, want +1", before.DelayUpdates, after.DelayUpdates)
	}
	if after.FullSolves != before.FullSolves {
		t.Fatalf("delay refresh triggered a full re-solve (%d → %d)", before.FullSolves, after.FullSolves)
	}
}

func TestJoinDuplicateIsSentinel(t *testing.T) {
	d := testDirector(t)
	if _, err := d.Join("alice", 12, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Join("alice", 13, 3); !errors.Is(err, ErrDuplicateClient) {
		t.Fatalf("duplicate join: err = %v, want ErrDuplicateClient", err)
	}
}

// TestHTTPTopologyRoundTrip drives the full rolling-deploy protocol over
// the HTTP surface through the Go client binding: grow the fleet, grow
// the world, drain a server (asserting evacuation without a full
// re-solve), uncordon it, drain again, and retire it.
func TestHTTPTopologyRoundTrip(t *testing.T) {
	d := testDirector(t)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	cl := NewClient(srv.URL)

	for i := 0; i < 12; i++ {
		if _, err := cl.Join("", i%40, i%8); err != nil {
			t.Fatal(err)
		}
	}

	servers, err := cl.Servers()
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 4 {
		t.Fatalf("%d servers, want 4", len(servers))
	}
	added, err := cl.AddServer(35, 80)
	if err != nil {
		t.Fatal(err)
	}
	if added.Server != 4 || added.Node != 35 || added.CapacityMbps != 80 {
		t.Fatalf("added server = %+v", added)
	}
	zone, err := cl.AddZone()
	if err != nil {
		t.Fatal(err)
	}
	if zone.Zone != 8 {
		t.Fatalf("added zone = %+v, want index 8", zone)
	}
	if _, err := cl.Join("newcomer", 17, zone.Zone); err != nil {
		t.Fatal(err)
	}

	statsBefore, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsBefore.Servers != 5 || statsBefore.Zones != 9 {
		t.Fatalf("stats topology = %d servers / %d zones, want 5/9", statsBefore.Servers, statsBefore.Zones)
	}

	drained, err := cl.DrainServer(0)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental load maintenance leaves float dust on an emptied server,
	// so the load check is a tolerance, not equality.
	if !drained.Draining || drained.Zones != 0 || drained.LoadMbps > 1e-9 || drained.LoadMbps < -1e-9 {
		t.Fatalf("drained server = %+v, want empty and draining", drained)
	}
	statsAfter, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsAfter.FullSolves != statsBefore.FullSolves {
		t.Fatalf("drain triggered a full re-solve (%d → %d)", statsBefore.FullSolves, statsAfter.FullSolves)
	}
	if statsAfter.Draining != 1 {
		t.Fatalf("stats draining = %d, want 1", statsAfter.Draining)
	}
	// Every client is off the drained server.
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range snap {
		if ci.Contact == 0 || ci.Target == 0 {
			t.Fatalf("client %s still touches drained server 0: %+v", ci.ID, ci)
		}
	}

	if _, err := cl.UncordonServer(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DrainServer(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveServer(0); err != nil {
		t.Fatal(err)
	}
	servers, err = cl.Servers()
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 4 {
		t.Fatalf("%d servers after removal, want 4", len(servers))
	}
	// The old last server (node 35) was renumbered to index 0.
	if servers[0].Node != 35 {
		t.Fatalf("renumbered server 0 on node %d, want 35", servers[0].Node)
	}

	// Retire an empty zone: empty the added zone first by moving its one
	// client out, then delete it.
	if _, err := cl.Move("newcomer", 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.RetireZone(zone.Zone); err != nil {
		t.Fatal(err)
	}
	zones, err := cl.Zones()
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 8 {
		t.Fatalf("%d zones after retire, want 8", len(zones))
	}

	// The mutated deployment still serves the ordinary churn surface.
	if _, err := cl.Join("after-topo", 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Reassign(); err != nil {
		t.Fatal(err)
	}
}

// TestTopologyChurnRaceStress hammers the director with concurrent stats,
// snapshot and inventory reads while a writer cycles server add / drain /
// uncordon / remove, zone add / retire and client churn — the -race CI
// job turns any locking gap into a failure.
func TestTopologyChurnRaceStress(t *testing.T) {
	d := testDirector(t)
	for i := 0; i < 20; i++ {
		if _, err := d.Join("", i%40, i%8); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 4 {
				case 0:
					d.Stats()
				case 1:
					d.Servers()
				case 2:
					d.Zones()
				default:
					d.Snapshot()
				}
			}
		}(r)
	}
	for cycle := 0; cycle < 25; cycle++ {
		info, err := d.AddServer(cycle%40, 60)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Join("", (cycle*7)%40, cycle%8); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AddZone(); err != nil {
			t.Fatal(err)
		}
		if _, err := d.DrainServer(0); err != nil {
			t.Fatal(err)
		}
		if _, err := d.UncordonServer(0); err != nil {
			t.Fatal(err)
		}
		if _, err := d.DrainServer(info.Server); err != nil {
			t.Fatal(err)
		}
		if err := d.RemoveServer(info.Server); err != nil {
			t.Fatal(err)
		}
		if err := d.RetireZone(d.Stats().Zones - 1); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if st := d.Stats(); st.Servers != 4 || st.Zones != 8 {
		t.Fatalf("topology did not return to 4 servers / 8 zones: %+v", st)
	}
}

// TestHTTPAdjacencyRoundTrip drives the interaction-graph CRUD through
// the Go binding: set installs at an absolute weight, add accumulates,
// set-to-zero removes, the listing stays canonical, and the traffic
// estimate surfaces in GET /v1/stats.
func TestHTTPAdjacencyRoundTrip(t *testing.T) {
	d := testDirector(t)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	api := NewClient(srv.URL)

	if edges, err := api.Adjacency(); err != nil || len(edges) != 0 {
		t.Fatalf("fresh director lists %v (%v), want no edges", edges, err)
	}
	// Arguments arrive unordered; the edge must come back canonical.
	info, err := api.SetAdjacency(5, 2, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if info.Zone1 != 2 || info.Zone2 != 5 || info.WeightMbps != 3.5 {
		t.Fatalf("set returned %+v, want {2 5 3.5}", info)
	}
	if info, err = api.AddAdjacencyWeight(2, 5, 1.5); err != nil || info.WeightMbps != 5 {
		t.Fatalf("add returned %+v (%v), want weight 5", info, err)
	}
	if _, err = api.SetAdjacency(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	edges, err := api.Adjacency()
	if err != nil {
		t.Fatal(err)
	}
	want := []AdjacencyInfo{{0, 1, 2}, {2, 5, 5}}
	if len(edges) != len(want) || edges[0] != want[0] || edges[1] != want[1] {
		t.Fatalf("adjacency = %v, want %v", edges, want)
	}

	st, err := api.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.AdjacencyEdges != 2 || st.AdjacencyEdits != 3 {
		t.Fatalf("stats report %d edges / %d edits, want 2 / 3", st.AdjacencyEdges, st.AdjacencyEdits)
	}
	// testDirector runs delay-only (weight 0): the cut weight is still
	// observable, the objective term is not.
	if st.TrafficWeight != 0 || st.TrafficCost != 0 {
		t.Fatalf("delay-only director reports weight %v cost %v, want 0/0", st.TrafficWeight, st.TrafficCost)
	}
	if st.TrafficCutMbps < 0 || st.TrafficCutMbps > 7 {
		t.Fatalf("cut weight %v outside [0, total weight 7]", st.TrafficCutMbps)
	}

	// Set-to-zero removes.
	if info, err = api.SetAdjacency(1, 0, 0); err != nil || info.WeightMbps != 0 {
		t.Fatalf("remove returned %+v (%v), want weight 0", info, err)
	}
	if edges, err = api.Adjacency(); err != nil || len(edges) != 1 {
		t.Fatalf("after removal adjacency = %v (%v), want one edge", edges, err)
	}
}

// TestAdjacencyExportsWithProblem asserts GET /v1/problem carries the
// interaction graph and traffic weight, so offline analysis prices the
// snapshot exactly as the live planner does.
func TestAdjacencyExportsWithProblem(t *testing.T) {
	d := testDirector(t)
	if _, err := d.Join("a", 12, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetAdjacency(2, 3, 4); err != nil {
		t.Fatal(err)
	}
	p := d.ProblemSnapshot()
	if p.Adjacency == nil || p.Adjacency.NumEdges() != 1 || p.Adjacency.Weight(2, 3) != 4 {
		t.Fatalf("problem snapshot lost the adjacency graph: %+v", p.Adjacency)
	}
	var buf strings.Builder
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := core.ReadProblemJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Adjacency == nil || rt.Adjacency.Weight(2, 3) != 4 {
		t.Fatalf("adjacency did not round-trip through problem JSON")
	}
}
