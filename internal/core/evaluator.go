package core

// Evaluator maintains a CAP solution together with every derived quantity
// the local search scores moves by — per-client effective delays, per-server
// loads, the QoS count, the RAP cost and the total load — and updates them
// incrementally as the solution changes. A zone move is scored and applied
// in O(clients of the zone); a contact switch in O(1). This replaces the
// clone-and-rescore evaluation (retained as localSearchOracle) that made
// every candidate move O(zones × servers × clients).
//
// The evaluator keeps its own copy of the assignment; read it back with
// Assignment. Reset rebinds the evaluator to a new problem/assignment pair
// reusing all internal buffers, so replication and churn loops can score
// millions of moves without allocating. An Evaluator is not safe for
// concurrent use.
//
// Beyond move scoring, the evaluator supports churn mutations — AddClient,
// RemoveClient, MoveClient, SetClientDelays, SetClientRT (evaluator_dyn.go)
// — each O(1) in derived-state maintenance, which is what the repair
// subsystem builds on. Those methods mutate the bound Problem and therefore
// require the evaluator to own it exclusively.
type Evaluator struct {
	p *Problem

	zoneServer []int
	contact    []int

	// Mutable zone → client index: zoneMembers[z] lists the client IDs of
	// zone z in arbitrary order, and posInZone[j] is client j's position
	// inside its zone's list, so membership changes are O(1) swap-removes.
	zoneMembers [][]int
	posInZone   []int

	zoneRT []float64
	delay  []float64 // effective delay per client
	loads  []float64 // bandwidth load per server

	// cordoned[i] excludes server i as a placement destination (drain;
	// evaluator_topo.go). Preserved across Reset while the server count
	// matches, cleared when the dimension changes.
	cordoned []bool

	withQoS   int
	rapCost   float64
	totalLoad float64

	// Traffic term (DESIGN.md §15). trafficOn caches p.TrafficOn() at
	// Reset (re-derived when adjacency CRUD flips it); trafficCut is the
	// unweighted cross-server cut weight of the adjacency graph,
	// maintained incrementally like rapCost — ApplyZoneMove walks the
	// moved zone's neighbor row in O(degree), every other mutation is
	// traffic-neutral. The score exposes TrafficWeight × trafficCut.
	trafficOn  bool
	trafficCut float64

	// Candidate-delta cache and scan parallelism (movecache.go). workers
	// ≤ 1 scans sequentially; results are identical for every setting.
	cache   moveCache
	workers int

	// Row materialization scratch for provider-backed problems (nil CS).
	// rowScratch serves the sequential row-streaming scans (csRow);
	// adjScratch is dedicated to adjustRowForClient, which runs while a
	// caller may still hold a csRow result. Parallel scans allocate
	// per-worker scratch instead (bestZoneMove).
	rowScratch []float64
	adjScratch []float64

	// Metric handles (telemetry.go); the zero value is fully disabled.
	tele evTele
}

// NewEvaluator returns an evaluator bound to p with a's solution loaded.
func NewEvaluator(p *Problem, a *Assignment) *Evaluator {
	ev := &Evaluator{}
	ev.Reset(p, a)
	return ev
}

// Reset rebinds the evaluator to (p, a), reusing internal buffers. It runs
// in O(clients + zones + servers).
func (ev *Evaluator) Reset(p *Problem, a *Assignment) {
	m, n, k := p.NumServers(), p.NumZones, p.NumClients()
	ev.p = p

	ev.zoneServer = grow(ev.zoneServer, n)
	copy(ev.zoneServer, a.ZoneServer)
	ev.contact = grow(ev.contact, k)
	copy(ev.contact, a.ClientContact)

	// Zone → clients index. Per-zone buckets keep their capacity across
	// Resets, so steady-state rebinding allocates nothing.
	if cap(ev.zoneMembers) < n {
		nm := make([][]int, n)
		copy(nm, ev.zoneMembers)
		ev.zoneMembers = nm
	} else {
		ev.zoneMembers = ev.zoneMembers[:n]
	}
	for z := range ev.zoneMembers {
		ev.zoneMembers[z] = ev.zoneMembers[z][:0]
	}
	ev.posInZone = grow(ev.posInZone, k)
	for j, z := range p.ClientZones {
		ev.posInZone[j] = len(ev.zoneMembers[z])
		ev.zoneMembers[z] = append(ev.zoneMembers[z], j)
	}

	ev.zoneRT = grow(ev.zoneRT, n)
	for i := range ev.zoneRT {
		ev.zoneRT[i] = 0
	}
	ev.delay = grow(ev.delay, k)
	ev.loads = grow(ev.loads, m)
	for i := range ev.loads {
		ev.loads[i] = 0
	}
	if len(ev.cordoned) != m {
		ev.cordoned = make([]bool, m)
	}

	ev.withQoS, ev.rapCost, ev.totalLoad = 0, 0, 0
	for j, z := range p.ClientZones {
		rt := p.ClientRT[j]
		ev.zoneRT[z] += rt
		t := ev.zoneServer[z]
		ev.loads[t] += rt
		c := ev.contact[j]
		var d float64
		if c == t {
			d = ev.csAt(j, t)
		} else {
			d = ev.csAt(j, c) + p.SS[c][t]
			ev.loads[c] += 2 * rt
		}
		ev.delay[j] = d
		if d <= p.D {
			ev.withQoS++
		} else {
			ev.rapCost += d - p.D
		}
	}
	for _, l := range ev.loads {
		ev.totalLoad += l
	}

	ev.trafficOn = p.TrafficOn()
	ev.trafficCut = 0
	if ev.trafficOn {
		ev.trafficCut = p.Adjacency.CutWeight(ev.zoneServer)
	}

	// Rebinding invalidates every cached zone-move delta; the cache is
	// sized here so mutation-side invalidation stays O(1).
	ev.cache.ensure(n, m, ev.trafficOn)
	ev.cache.invalidateAll()
}

// clientsOf returns the client IDs of zone z.
func (ev *Evaluator) clientsOf(z int) []int {
	return ev.zoneMembers[z]
}

// csAt reads CS[j][i] through the problem's delay representation — the
// point-read form every incremental update uses. Dense problems compile to
// the old direct indexing.
func (ev *Evaluator) csAt(j, i int) float64 {
	if dp := ev.p.Delays; dp != nil {
		return dp.ClientServer(j, i)
	}
	return ev.p.CS[j][i]
}

// csRow returns client j's delay row for the sequential row-streaming
// scans: dense problems return the internal row, provider-backed problems
// materialize into the evaluator's scratch buffer. The result is read-only
// and invalidated by the next csRow or mutation; never call from the
// parallel shard workers (they carry their own scratch).
func (ev *Evaluator) csRow(j int) []float64 {
	p := ev.p
	if p.Delays == nil {
		return p.CS[j]
	}
	m := p.NumServers()
	if cap(ev.rowScratch) < m {
		ev.rowScratch = make([]float64, m)
	}
	return p.Delays.Row(j, ev.rowScratch[:m])
}

// WithQoS returns the number of clients whose effective delay meets the
// bound.
func (ev *Evaluator) WithQoS() int { return ev.withQoS }

// RAPCost returns the refined-assignment objective C^R(x): the summed
// excess of every client's effective delay over the bound. Maintained
// incrementally; may differ from a fresh RAPCost sum by float rounding.
func (ev *Evaluator) RAPCost() float64 { return ev.rapCost }

// TotalLoad returns the summed server bandwidth load.
func (ev *Evaluator) TotalLoad() float64 { return ev.totalLoad }

// ClientDelay returns client j's current effective delay.
func (ev *Evaluator) ClientDelay(j int) float64 { return ev.delay[j] }

// ServerLoad returns server i's current bandwidth load.
func (ev *Evaluator) ServerLoad(i int) float64 { return ev.loads[i] }

// Assignment returns a fresh copy of the evaluator's current solution.
func (ev *Evaluator) Assignment() *Assignment {
	return &Assignment{
		ZoneServer:    append([]int(nil), ev.zoneServer...),
		ClientContact: append([]int(nil), ev.contact...),
	}
}

// score returns the current lexicographic objective.
func (ev *Evaluator) score() score {
	s := score{withQoS: ev.withQoS, rapCost: ev.rapCost, load: ev.totalLoad}
	if ev.trafficOn {
		s.traffic = ev.p.TrafficWeight * ev.trafficCut
	}
	return s
}

// zoneMoveScore returns the objective the solution would have after
// rehosting zone z on server s (clients whose contact was the old target
// follow to s), in O(clients of z) and without mutating anything. It is
// the current score plus the pure delta of zoneMoveDelta — the same
// arithmetic every search path uses.
func (ev *Evaluator) zoneMoveScore(z, s int) score {
	return ev.score().plus(ev.zoneMoveDelta(z, s))
}

// ApplyZoneMove rehosts zone z on server s, updating all derived state
// incrementally in O(clients of z). Clients whose contact was the old
// target follow to s, matching the zone-move neighbourhood of LocalSearch.
func (ev *Evaluator) ApplyZoneMove(z, s int) {
	p := ev.p
	old := ev.zoneServer[z]
	if s == old {
		return
	}
	if ev.trafficOn {
		// O(degree): edges to zones on the old host become cut, edges to
		// zones on the destination become internal; every neighbor's cached
		// delta row saw z's host change (evaluator_traffic.go).
		ev.applyTrafficMove(z, old, s)
	}
	ev.loads[old] -= ev.zoneRT[z]
	ev.loads[s] += ev.zoneRT[z]
	for _, j := range ev.clientsOf(z) {
		c := ev.contact[j]
		var nd float64
		switch {
		case c == old:
			ev.contact[j] = s
			nd = ev.csAt(j, s)
		case c == s:
			nd = ev.csAt(j, s)
			ev.loads[s] -= 2 * p.ClientRT[j]
			ev.totalLoad -= 2 * p.ClientRT[j]
		default:
			nd = ev.csAt(j, c) + p.SS[c][s]
		}
		od := ev.delay[j]
		if od <= p.D {
			ev.withQoS--
		} else {
			ev.rapCost -= od - p.D
		}
		if nd <= p.D {
			ev.withQoS++
		} else {
			ev.rapCost += nd - p.D
		}
		ev.delay[j] = nd
	}
	ev.zoneServer[z] = s
	ev.touchZone(z)
}

// ApplyContactSwitch points client j's contact at server s, updating all
// derived state in O(1) — plus an O(servers) adjustment of the client's
// zone row in the candidate-delta cache, which keeps the row usable
// instead of invalidating it (contact switches are the high-volume
// mutation of the search's inner loop).
func (ev *Evaluator) ApplyContactSwitch(j, s int) {
	p := ev.p
	c := ev.contact[j]
	if s == c {
		return
	}
	ev.adjustRowForClient(j, -1)
	t := ev.zoneServer[p.ClientZones[j]]
	rt2 := 2 * p.ClientRT[j]
	if c != t {
		ev.loads[c] -= rt2
		ev.totalLoad -= rt2
	}
	if s != t {
		ev.loads[s] += rt2
		ev.totalLoad += rt2
	}
	var nd float64
	if s == t {
		nd = ev.csAt(j, t)
	} else {
		nd = ev.csAt(j, s) + p.SS[s][t]
	}
	od := ev.delay[j]
	if od <= p.D {
		ev.withQoS--
	} else {
		ev.rapCost -= od - p.D
	}
	if nd <= p.D {
		ev.withQoS++
	} else {
		ev.rapCost += nd - p.D
	}
	ev.delay[j] = nd
	ev.contact[j] = s
	ev.adjustRowForClient(j, 1)
}

// LocalSearch runs the hill climber on the evaluator's current solution,
// mutating it in place; it reports whether any move was accepted. Same
// semantics as the package-level LocalSearch. The zone-move scan runs
// through the candidate-delta cache, sharded across the goroutines set by
// SetWorkers (movecache.go); the accepted moves are identical for every
// worker count.
func (ev *Evaluator) LocalSearch(maxRounds int) bool {
	any := false
	for round := 0; round < maxRounds; round++ {
		improvedZone := ev.bestZoneMove()
		improvedContact := ev.contactSwitchPass()
		if !improvedZone && !improvedContact {
			break
		}
		any = true
	}
	return any
}

// contactSwitchPass greedily improves each out-of-bound client's contact,
// in client order, exactly like the oracle's tryBestContactSwitch: a switch
// is taken only when it shrinks the excess of a client beyond the bound
// (delay already within the bound changes nothing the CAP counts).
func (ev *Evaluator) contactSwitchPass() bool {
	p := ev.p
	m := p.NumServers()
	improved := false
	for j := range p.ClientZones {
		curDelay := ev.delay[j]
		if curDelay <= p.D {
			continue
		}
		t := ev.zoneServer[p.ClientZones[j]]
		cur := ev.contact[j]
		bestServer := -1
		bestDelay := curDelay
		row := ev.csRow(j)
		for s := 0; s < m; s++ {
			if s == cur {
				continue
			}
			var d float64
			if s == t {
				d = row[t]
			} else {
				if ev.cordoned[s] || !almostLE(ev.loads[s]+2*p.ClientRT[j], p.ServerCaps[s]) {
					continue
				}
				d = row[s] + p.SS[s][t]
			}
			if d < bestDelay-1e-12 {
				bestDelay, bestServer = d, s
			}
		}
		if bestServer >= 0 {
			ev.ApplyContactSwitch(j, bestServer)
			improved = true
		}
	}
	return improved
}
