package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// appendAll writes records 1..n with payloads derived from their LSN.
func appendAll(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		want := w.NextLSN()
		lsn, err := w.Append(payloadFor(want))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != want {
			t.Fatalf("append got LSN %d, want %d", lsn, want)
		}
	}
}

func payloadFor(lsn uint64) []byte { return []byte(fmt.Sprintf("event-%d", lsn)) }

// collect replays everything after `after` into a map.
func collect(t *testing.T, dir string, after uint64) (map[uint64]string, uint64) {
	t.Helper()
	got := map[uint64]string{}
	last, err := Replay(dir, after, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, last
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, 25)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, last := collect(t, dir, 0)
	if last != 25 || len(got) != 25 {
		t.Fatalf("replay: last %d, %d records", last, len(got))
	}
	for lsn := uint64(1); lsn <= 25; lsn++ {
		if got[lsn] != string(payloadFor(lsn)) {
			t.Fatalf("LSN %d payload %q", lsn, got[lsn])
		}
	}
	// Tail replay skips covered records.
	got, last = collect(t, dir, 20)
	if last != 25 || len(got) != 5 {
		t.Fatalf("tail replay: last %d, %d records", last, len(got))
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, 7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextLSN() != 8 {
		t.Fatalf("reopened NextLSN %d, want 8", w.NextLSN())
	}
	appendAll(t, w, 3)
	w.Close()
	got, last := collect(t, dir, 0)
	if last != 10 || len(got) != 10 {
		t.Fatalf("after reopen: last %d, %d records", last, len(got))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	w, err := Open(dir, 0, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, 40)
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected many segments, got %d", len(segs))
	}
	got, last := collect(t, dir, 0)
	if last != 40 || len(got) != 40 {
		t.Fatalf("rotated replay: last %d, %d records", last, len(got))
	}
	// GC everything a snapshot at LSN 30 covers.
	if err := w.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	after, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segs) {
		t.Fatalf("truncate removed nothing: %d -> %d segments", len(segs), len(after))
	}
	if after[0] > 31 {
		t.Fatalf("truncate removed a needed segment: first remaining starts at %d", after[0])
	}
	got, last = collect(t, dir, 30)
	if last != 40 || len(got) != 10 {
		t.Fatalf("post-GC tail replay: last %d, %d records", last, len(got))
	}
	w.Close()
}

func TestOpenWithBaseStartsAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextLSN() != 101 {
		t.Fatalf("NextLSN %d, want 101", w.NextLSN())
	}
	appendAll(t, w, 2)
	w.Close()
	got, last := collect(t, dir, 100)
	if last != 102 || len(got) != 2 {
		t.Fatalf("replay after base: last %d, %d records", last, len(got))
	}
}

// tornVariants returns mutations of a valid segment tail that Open must
// truncate away: partial header, partial payload, corrupt final CRC,
// zero length.
func tornVariants() map[string]func(b []byte) []byte {
	return map[string]func(b []byte) []byte{
		"partial-header":  func(b []byte) []byte { return append(b, 0x05, 0x00) },
		"partial-payload": func(b []byte) []byte { return append(b, 0x05, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y') },
		"bad-final-crc": func(b []byte) []byte {
			frame := make([]byte, frameHeader+3)
			binary.LittleEndian.PutUint32(frame[0:4], 3)
			binary.LittleEndian.PutUint32(frame[4:8], 0xdeadbeef)
			copy(frame[frameHeader:], "abc")
			return append(b, frame...)
		},
		"zero-length": func(b []byte) []byte { return append(b, 0, 0, 0, 0, 1, 2, 3, 4) },
		"huge-length": func(b []byte) []byte {
			frame := make([]byte, frameHeader)
			binary.LittleEndian.PutUint32(frame[0:4], MaxRecord+1)
			binary.LittleEndian.PutUint32(frame[4:8], 1)
			return append(b, frame...)
		},
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for name, mutate := range tornVariants() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, 0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, w, 5)
			w.Close()
			segs, _ := segments(dir)
			path := filepath.Join(dir, segmentName(segs[0]))
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutate(b), 0o644); err != nil {
				t.Fatal(err)
			}
			// Replay before repair: clean stop at the torn record.
			got, last := collect(t, dir, 0)
			if last != 5 || len(got) != 5 {
				t.Fatalf("replay over torn tail: last %d, %d records", last, len(got))
			}
			// Open truncates the tail and appends continue seamlessly.
			w, err = Open(dir, 0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if w.NextLSN() != 6 {
				t.Fatalf("NextLSN after repair %d, want 6", w.NextLSN())
			}
			appendAll(t, w, 2)
			w.Close()
			got, last = collect(t, dir, 0)
			if last != 7 || len(got) != 7 {
				t.Fatalf("replay after repair: last %d, %d records", last, len(got))
			}
		})
	}
}

func TestCorruptionBeforeFinalSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 0, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, 20)
	w.Close()
	segs, _ := segments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Flip a payload bit in the middle segment: acked records follow the
	// damage, so recovery must refuse rather than silently drop them.
	path := filepath.Join(dir, segmentName(segs[1]))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(magic)+frameHeader+2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over mid-log damage: %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log damage: %v, want ErrCorrupt", err)
	}
}

func TestBadMagicIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, 3)
	w.Close()
	segs, _ := segments(dir)
	path := filepath.Join(dir, segmentName(segs[0]))
	b, _ := os.ReadFile(path)
	b[0] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if _, err := Replay(dir, 0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay with bad magic: %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}
	for _, lsn := range []uint64{5, 17, 42} {
		if err := WriteSnapshot(dir, lsn, []byte(fmt.Sprintf("state@%d", lsn)), nil); err != nil {
			t.Fatal(err)
		}
	}
	lsn, payload, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 || string(payload) != "state@42" {
		t.Fatalf("latest snapshot: %d %q", lsn, payload)
	}
	if err := PruneSnapshots(dir, 2); err != nil {
		t.Fatal(err)
	}
	lsns, err := SnapshotLSNs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 2 || lsns[0] != 17 || lsns[1] != 42 {
		t.Fatalf("pruned snapshots: %v", lsns)
	}
}

func TestSnapshotCrashLeavesOldStateReadable(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 10, []byte("old"), nil); err != nil {
		t.Fatal(err)
	}
	crash := errors.New("crash")
	// Crash after the temp file is written but before the rename: the new
	// snapshot must be invisible and the old one intact.
	hook := func(point string) error {
		if point == "snapshot:temp" {
			return crash
		}
		return nil
	}
	if err := WriteSnapshot(dir, 20, []byte("new"), hook); !errors.Is(err, crash) {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	lsn, payload, err := LatestSnapshot(dir)
	if err != nil || lsn != 10 || string(payload) != "old" {
		t.Fatalf("after temp-crash: %d %q %v", lsn, payload, err)
	}
	// Prune clears the leftover .tmp.
	if err := PruneSnapshots(dir, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(20)+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp not pruned: %v", err)
	}
}

func TestAppendCrashPoints(t *testing.T) {
	crash := errors.New("crash")
	for _, point := range []string{"append:start", "append:torn", "append:unsynced"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, 0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, w, 4)
			w.opt.CrashHook = func(p string) error {
				if p == point {
					return crash
				}
				return nil
			}
			if _, err := w.Append([]byte("doomed")); !errors.Is(err, crash) {
				t.Fatalf("append: %v", err)
			}
			w.f.Close() // simulate process death without Writer.Close bookkeeping
			// Recovery: the 4 acked records survive, the unacked one may or
			// may not (here: must not, since no crash point syncs a full frame).
			w2, err := Open(dir, 0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := w2.NextLSN(); got != 5 && point != "append:unsynced" {
				t.Fatalf("NextLSN after crash at %s: %d", point, got)
			}
			got, _ := collect(t, dir, 0)
			for lsn := uint64(1); lsn <= 4; lsn++ {
				if got[lsn] != string(payloadFor(lsn)) {
					t.Fatalf("acked LSN %d lost after crash at %s", lsn, point)
				}
			}
			appendAll(t, w2, 1)
			w2.Close()
		})
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "nope")
	if ok, err := HasState(sub); err != nil || ok {
		t.Fatalf("missing dir: %v %v", ok, err)
	}
	if ok, err := HasState(dir); err != nil || ok {
		t.Fatalf("empty dir: %v %v", ok, err)
	}
	w, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if ok, err := HasState(dir); err != nil || !ok {
		t.Fatalf("dir with segment: %v %v", ok, err)
	}
}

// FuzzWALDecode feeds arbitrary bytes to the segment scanner via a real
// file: whatever the mutator produces, scanning must neither panic nor
// mis-frame — every payload it does deliver must carry a valid CRC.
func FuzzWALDecode(f *testing.F) {
	// Corpus seeds: a valid two-record segment, assorted torn tails, junk.
	valid := func() []byte {
		var b bytes.Buffer
		b.WriteString(magic)
		for _, p := range [][]byte{[]byte(`{"op":"join","id":"c1"}`), []byte(`{"op":"leave"}`)} {
			var hdr [frameHeader]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, crcTable))
			b.Write(hdr[:])
			b.Write(p)
		}
		return b.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(magic))
	f.Add([]byte("DVEWAL99junk"))
	f.Add([]byte{})
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff, 0xff, 0x7f))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		count, end, torn, err := scanSegment(path, func(payload []byte) error {
			if len(payload) == 0 || len(payload) > MaxRecord {
				t.Fatalf("delivered payload of %d bytes", len(payload))
			}
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corrupt error: %v", err)
			}
			return
		}
		if end > int64(len(data)) {
			t.Fatalf("scan end %d past file size %d", end, len(data))
		}
		if count > 0 && end <= int64(len(magic)) {
			t.Fatalf("%d records in %d bytes", count, end)
		}
		// A truncated-then-reopened segment must replay the same records.
		// (end == 0 means the magic itself was incomplete; the truncated
		// file is empty and legitimately still "torn".)
		if err := os.WriteFile(path, data[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		count2, end2, torn2, err := scanSegment(path, nil)
		if err != nil {
			t.Fatalf("rescan of truncated file: %v", err)
		}
		if count2 != count || end2 != end || (torn2 && end > 0) {
			t.Fatalf("rescan diverged: %d/%d records, %d/%d end, torn %v/%v",
				count, count2, end, end2, torn, torn2)
		}
	})
}
