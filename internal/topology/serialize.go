package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation of a Graph.
type graphJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	ID   int     `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	AS   int     `json:"as"`
	Name string  `json:"name,omitempty"`
}

type edgeJSON struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Delay float64 `json:"delay"`
}

// WriteJSON serialises the graph.
func (g *Graph) WriteJSON(w io.Writer) error {
	gj := graphJSON{
		Nodes: make([]nodeJSON, 0, g.N()),
		Edges: make([]edgeJSON, 0, g.M()),
	}
	for _, n := range g.Nodes {
		gj.Nodes = append(gj.Nodes, nodeJSON{ID: n.ID, X: n.Pos.X, Y: n.Pos.Y, AS: n.AS, Name: n.Name})
	}
	for _, e := range g.Edges {
		gj.Edges = append(gj.Edges, edgeJSON{A: e.A, B: e.B, Delay: e.Delay})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(gj)
}

// ReadJSON deserialises a graph previously written with WriteJSON and
// validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var gj graphJSON
	if err := json.NewDecoder(r).Decode(&gj); err != nil {
		return nil, fmt.Errorf("topology: decoding graph: %w", err)
	}
	g := NewGraph(len(gj.Nodes), len(gj.Edges))
	for i, n := range gj.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("topology: node %d has ID %d; nodes must be listed in ID order", i, n.ID)
		}
		id := g.AddNode(Point{X: n.X, Y: n.Y}, n.AS)
		g.Nodes[id].Name = n.Name
	}
	for _, e := range gj.Edges {
		if e.A < 0 || e.A >= g.N() || e.B < 0 || e.B >= g.N() {
			return nil, fmt.Errorf("topology: edge (%d,%d) out of range", e.A, e.B)
		}
		if e.A == e.B {
			return nil, fmt.Errorf("topology: self-loop at %d", e.A)
		}
		if e.Delay < 0 {
			return nil, fmt.Errorf("topology: negative delay on edge (%d,%d)", e.A, e.B)
		}
		g.AddEdge(e.A, e.B, e.Delay)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: invalid graph: %w", err)
	}
	return g, nil
}
