// Package repair implements incremental churn repair for the client
// assignment problem: O(affected) re-optimisation per join/leave/move/
// delay-update event, in place of the full two-phase re-execution the
// paper's §3.4 prescribes for DVE dynamics (DESIGN.md §7).
//
// A Planner sits on a long-lived core.Evaluator bound to a problem the
// planner owns exclusively. Each churn event is applied through the
// evaluator's O(1) mutation deltas, the affected client is re-attached
// with one step of GreC's greedy contact logic, and a localized zone-move
// scan is seeded from the zones whose client sets or loads the event
// changed. Quality drift against the last full two-phase solve is tracked
// continuously; when it decays past a configurable threshold the planner
// amortizes one full re-solve and resumes repairing from there.
//
// Clients are addressed by stable integer handles, so callers can keep
// their own indexing (registration order, world order) while the planner
// compacts its dense problem arrays with swap-removes.
package repair

import (
	"fmt"

	"dvecap/internal/core"
	"dvecap/internal/xrand"
)

// Config parameterises a Planner.
type Config struct {
	// Algo is the two-phase algorithm used for the initial solve and every
	// full re-solve (required).
	Algo core.TwoPhase
	// Opt configures full solves. A Scratch workspace is attached
	// automatically when none is set. Opt.Workers also configures the
	// planner's evaluator: the seeded repair scans consult the evaluator's
	// candidate-delta cache either way, and full solves shard the greedy
	// phase's cost-matrix build across that many goroutines (DESIGN.md §8).
	// Repair decisions are bit-identical for every worker count.
	Opt core.Options
	// DriftPQoS, when > 0, arms the quality guard: as soon as the
	// maintained solution's pQoS falls more than this far below the level
	// the last full solve achieved, the planner re-runs the full two-phase
	// algorithm. 0 disables the guard — full solves then happen only
	// through explicit FullSolve calls (e.g. a fallback cadence).
	DriftPQoS float64
	// DriftUtilSpread, when > 0, arms the imbalance guard: a full re-solve
	// fires when the max−min per-server utilization spread (load/capacity
	// over non-draining servers) rises more than this far above the spread
	// the last full solve left behind. Relative-to-baseline, like the pQoS
	// guard, so a fleet whose best achievable balance is inherently lopsided
	// does not thrash. pQoS can hold steady while churn piles load onto a
	// few servers; this trigger catches that hot-spot drift.
	DriftUtilSpread float64
	// MinEventsBetweenFullSolves amortizes drift-triggered full solves: at
	// least this many events must separate two of them (default 1).
	MinEventsBetweenFullSolves int
	// StickyBonus, when > 0, biases full re-solves toward the incumbent
	// hosting via core.StickyGreZ — zones move only when the improvement
	// beats the bonus, reducing handoff volume (DESIGN.md §5).
	StickyBonus float64
}

// Stats counts what the planner has done since construction.
type Stats struct {
	Joins        int `json:"joins"`
	Leaves       int `json:"leaves"`
	Moves        int `json:"moves"`
	DelayUpdates int `json:"delay_updates"`
	// Topology events (topology.go): servers added, drained and removed,
	// zones added and retired on the live planner.
	ServerAdds      int `json:"server_adds"`
	ServerDrains    int `json:"server_drains"`
	ServerUncordons int `json:"server_uncordons"`
	ServerRemoves   int `json:"server_removes"`
	ZoneAdds        int `json:"zone_adds"`
	ZoneRetires     int `json:"zone_retires"`
	// Events is the total event count: client churn (the four client
	// counters above; a JoinBatch counts one event per admitted client)
	// plus topology events.
	Events int `json:"events"`
	// FullSolves counts full two-phase re-solves, including the initial
	// one and explicit FullSolve calls.
	FullSolves int `json:"full_solves"`
	// ZoneHandoffs counts zone rehostings: localized repair moves plus
	// zones whose server changed across a full re-solve.
	ZoneHandoffs int `json:"zone_handoffs"`
	// AdjacencyEdits counts interaction-graph edge updates (SetAdjacency
	// and AddAdjacency) applied to the live planner.
	AdjacencyEdits int `json:"adjacency_edits,omitempty"`
	// ContactSwitches counts contact re-placements made by the repair path
	// (full solves re-derive all contacts and are not counted here).
	ContactSwitches int `json:"contact_switches"`
	// BaselinePQoS is the pQoS the last full solve achieved; LastDriftPQoS
	// is how far below it the maintained solution currently sits.
	BaselinePQoS  float64 `json:"baseline_pqos"`
	LastDriftPQoS float64 `json:"last_drift_pqos"`
	// ImbalanceSolves counts full solves fired by the utilization-spread
	// guard alone (pQoS guard quiet at the time). BaselineUtilSpread is the
	// spread the last full solve left behind; LastUtilSpread the current
	// one.
	ImbalanceSolves    int     `json:"imbalance_solves"`
	BaselineUtilSpread float64 `json:"baseline_util_spread"`
	LastUtilSpread     float64 `json:"last_util_spread"`
	// LastSolveError is the message of the most recent failed drift-guard
	// full solve (empty when the last one succeeded). Possible only under
	// restrictive overflow policies; failed solves back off exponentially.
	LastSolveError string `json:"last_solve_error,omitempty"`
}

// Planner maintains a CAP solution under churn.
type Planner struct {
	cfg Config
	rng *xrand.RNG

	prob *core.Problem
	ev   *core.Evaluator

	idx  []int // handle → dense client index, -1 when released
	hnd  []int // dense client index → handle
	free []int // released handles available for reuse

	// drained[i] marks server i as draining: evacuated and cordoned, so
	// neither the repair scans (via the evaluator's cordon flags) nor full
	// re-solves (via Options.Cordoned) place anything on it. Maintained in
	// lockstep with the problem's server dimension (topology.go).
	drained []bool

	eventsSinceFull int
	failBackoff     int // events to wait after a failed guard solve; doubles per failure
	stats           Stats
	solveErr        error

	// Metric handles (telemetry.go); the zero value is fully disabled.
	tele plTele
}

// New builds a planner over a clone of p (the planner owns its copy
// exclusively), runs the initial full solve with cfg.Algo, and returns the
// ready planner. Clients receive handles 0..NumClients-1 in problem order.
func New(cfg Config, p *core.Problem, rng *xrand.RNG) (*Planner, error) {
	pl, err := prepare(cfg, p, rng)
	if err != nil {
		return nil, err
	}
	if err := pl.FullSolve(); err != nil {
		return nil, err
	}
	return pl, nil
}

// NewWithAssignment is New for callers that already hold a solution for p
// (e.g. a simulation's initial solve): no algorithm run happens, a is
// adopted as the baseline.
func NewWithAssignment(cfg Config, p *core.Problem, a *core.Assignment, rng *xrand.RNG) (*Planner, error) {
	pl, err := prepare(cfg, p, rng)
	if err != nil {
		return nil, err
	}
	if err := a.Validate(p); err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	pl.ev = core.NewEvaluator(pl.prob, a)
	pl.ev.SetWorkers(cfg.Opt.Workers)
	pl.stats.BaselinePQoS = pl.ev.PQoS()
	return pl, nil
}

func prepare(cfg Config, p *core.Problem, rng *xrand.RNG) (*Planner, error) {
	if cfg.Algo.Init == nil || cfg.Algo.Refine == nil {
		return nil, fmt.Errorf("repair: config needs a complete two-phase algorithm")
	}
	if rng == nil {
		return nil, fmt.Errorf("repair: nil RNG")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	if cfg.Opt.Scratch == nil {
		cfg.Opt.Scratch = core.NewWorkspace()
	}
	if cfg.MinEventsBetweenFullSolves < 1 {
		cfg.MinEventsBetweenFullSolves = 1
	}
	// The padded clone leaves per-row capacity for a handful of extra
	// servers, so the column-wise writes of AddServer/RemoveServer stream
	// through one arena instead of chasing 100k row allocations
	// (core.Problem.ClonePadded).
	pl := &Planner{cfg: cfg, rng: rng, prob: p.ClonePadded(8 + p.NumServers()/4)}
	k := pl.prob.NumClients()
	pl.idx = make([]int, k)
	pl.hnd = make([]int, k)
	for j := 0; j < k; j++ {
		pl.idx[j], pl.hnd[j] = j, j
	}
	pl.drained = make([]bool, pl.prob.NumServers())
	return pl, nil
}

// index resolves a handle, rejecting released and out-of-range ones.
func (pl *Planner) index(handle int) (int, error) {
	if handle < 0 || handle >= len(pl.idx) || pl.idx[handle] < 0 {
		return 0, fmt.Errorf("repair: unknown client handle %d", handle)
	}
	return pl.idx[handle], nil
}

// Join admits a client into zone with bandwidth requirement rt and
// client-server delay row cs (copied), attaches it greedily, repairs
// around the zone it landed in, and returns the client's stable handle.
func (pl *Planner) Join(zone int, rt float64, cs []float64) (int, error) {
	if zone < 0 || zone >= pl.prob.NumZones {
		return 0, fmt.Errorf("repair: zone %d outside [0,%d)", zone, pl.prob.NumZones)
	}
	if rt <= 0 {
		return 0, fmt.Errorf("repair: client RT %v, want > 0", rt)
	}
	if len(cs) != pl.prob.NumServers() {
		return 0, fmt.Errorf("repair: delay row has %d entries, want %d", len(cs), pl.prob.NumServers())
	}
	start := pl.teleStart()
	j := pl.ev.AddClient(zone, rt, cs)
	if pl.ev.GreedyContact(j) {
		pl.stats.ContactSwitches++
	}
	h := pl.attachHandle(j)
	pl.stats.Joins++
	pl.repairZones(zone)
	pl.afterEvent()
	pl.teleEvent(evJoin, 1, start)
	return h, nil
}

// attachHandle issues a stable handle for the freshly added dense client
// index j, reusing a released handle when one is free.
func (pl *Planner) attachHandle(j int) int {
	var h int
	if n := len(pl.free); n > 0 {
		h = pl.free[n-1]
		pl.free = pl.free[:n-1]
		pl.idx[h] = j
	} else {
		h = len(pl.idx)
		pl.idx = append(pl.idx, j)
	}
	pl.hnd = append(pl.hnd, h)
	return h
}

// Leave removes the client behind handle and repairs around the zone it
// vacated. The handle becomes invalid (and may be reused by later joins).
func (pl *Planner) Leave(handle int) error {
	j, err := pl.index(handle)
	if err != nil {
		return err
	}
	start := pl.teleStart()
	zone := pl.prob.ClientZones[j]
	moved := pl.ev.RemoveClient(j)
	if moved >= 0 {
		hm := pl.hnd[moved]
		pl.hnd[j] = hm
		pl.idx[hm] = j
	}
	pl.hnd = pl.hnd[:len(pl.hnd)-1]
	pl.idx[handle] = -1
	pl.free = append(pl.free, handle)
	pl.stats.Leaves++
	pl.repairZones(zone)
	pl.afterEvent()
	pl.teleEvent(evLeave, 1, start)
	return nil
}

// Move migrates the client's avatar to newZone, re-attaches it, and
// repairs around both the vacated and the entered zone.
func (pl *Planner) Move(handle, newZone int) error {
	j, err := pl.index(handle)
	if err != nil {
		return err
	}
	if newZone < 0 || newZone >= pl.prob.NumZones {
		return fmt.Errorf("repair: zone %d outside [0,%d)", newZone, pl.prob.NumZones)
	}
	start := pl.teleStart()
	old := pl.prob.ClientZones[j]
	pl.stats.Moves++
	if newZone != old {
		pl.ev.MoveClient(j, newZone)
		if pl.ev.GreedyContact(j) {
			pl.stats.ContactSwitches++
		}
		pl.repairZones(old, newZone)
	}
	pl.afterEvent()
	pl.teleEvent(evMove, 1, start)
	return nil
}

// UpdateDelays replaces the client's measured delay row (copied) and
// re-attaches it if the refresh pushed it out of bound.
func (pl *Planner) UpdateDelays(handle int, cs []float64) error {
	j, err := pl.index(handle)
	if err != nil {
		return err
	}
	if len(cs) != pl.prob.NumServers() {
		return fmt.Errorf("repair: delay row has %d entries, want %d", len(cs), pl.prob.NumServers())
	}
	start := pl.teleStart()
	pl.ev.SetClientDelays(j, cs)
	if pl.ev.GreedyContact(j) {
		pl.stats.ContactSwitches++
	}
	pl.stats.DelayUpdates++
	pl.repairZones(pl.prob.ClientZones[j])
	pl.afterEvent()
	pl.teleEvent(evDelayUpdate, 1, start)
	return nil
}

// SetRT updates one client's bandwidth requirement — bookkeeping for
// population-dependent bandwidth models, not a churn event (no repair
// pass, no drift check).
func (pl *Planner) SetRT(handle int, rt float64) error {
	j, err := pl.index(handle)
	if err != nil {
		return err
	}
	if rt <= 0 {
		return fmt.Errorf("repair: client RT %v, want > 0", rt)
	}
	pl.ev.SetClientRT(j, rt)
	return nil
}

// RefreshZoneRT sets the bandwidth requirement of every client of zone z
// to rt — the per-zone-uniform bandwidth models (one state update per
// frame covering the zone's population) after that population changed.
func (pl *Planner) RefreshZoneRT(z int, rt float64) error {
	if z < 0 || z >= pl.prob.NumZones {
		return fmt.Errorf("repair: zone %d outside [0,%d)", z, pl.prob.NumZones)
	}
	if rt <= 0 {
		return fmt.Errorf("repair: client RT %v, want > 0", rt)
	}
	for _, j := range pl.ev.ZoneClients(z) {
		pl.ev.SetClientRT(j, rt)
	}
	return nil
}

// repairZones runs the localized repair pass seeded from the given zones:
// the single best improving rehosting per seed zone, and — when a zone did
// move — greedy contact re-placement for its still-out-of-bound clients.
func (pl *Planner) repairZones(zones ...int) {
	for _, z := range zones {
		if !pl.ev.ImproveZone(z) {
			continue
		}
		pl.stats.ZoneHandoffs++
		for _, j := range pl.ev.ZoneClients(z) {
			if pl.ev.ClientDelay(j) <= pl.prob.D {
				continue
			}
			if pl.ev.GreedyContact(j) {
				pl.stats.ContactSwitches++
			}
		}
	}
}

// afterEvent updates drift tracking and fires the amortized full re-solve
// when the quality guard trips. It never fails the event: by the time the
// guard runs, the event is fully applied and the maintained solution is
// valid, so a failing solve (possible only under restrictive overflow
// policies) is recorded — visible through TakeSolveErr and
// Stats.LastSolveError — and retried with exponential event backoff so
// the O(affected) path never degrades into one failing full solve per
// event.
func (pl *Planner) afterEvent() { pl.afterEventN(1) }

// afterEventN is afterEvent for batched events: n events are accounted,
// the guard runs once.
func (pl *Planner) afterEventN(n int) {
	pl.stats.Events += n
	pl.eventsSinceFull += n
	minGap := pl.cfg.MinEventsBetweenFullSolves
	if pl.failBackoff > minGap {
		minGap = pl.failBackoff
	}
	pl.stats.LastDriftPQoS = pl.stats.BaselinePQoS - pl.ev.PQoS()
	pl.stats.LastUtilSpread = pl.utilSpread()
	pqosTrip := pl.cfg.DriftPQoS > 0 && pl.stats.LastDriftPQoS > pl.cfg.DriftPQoS
	spreadTrip := pl.cfg.DriftUtilSpread > 0 &&
		pl.stats.LastUtilSpread-pl.stats.BaselineUtilSpread > pl.cfg.DriftUtilSpread
	if (pqosTrip || spreadTrip) && pl.eventsSinceFull >= minGap {
		trigger := triggerDrift
		if spreadTrip && !pqosTrip {
			pl.stats.ImbalanceSolves++
			trigger = triggerImbalance
		}
		if err := pl.fullSolve(trigger); err != nil {
			pl.solveErr = err
			pl.stats.LastSolveError = err.Error()
			pl.eventsSinceFull = 0
			if pl.failBackoff == 0 {
				pl.failBackoff = 1
			} else if pl.failBackoff < 1024 {
				pl.failBackoff *= 2
			}
		}
	}
	pl.syncTele()
}

// TakeSolveErr drains the most recent drift-guard full-solve failure, if
// any. Event methods (Join, Leave, Move, UpdateDelays) return an error
// only when the event itself was rejected — a guard solve failing never
// un-applies an event, so its error is reported out of band here (and
// mirrored in Stats.LastSolveError for JSON consumers).
func (pl *Planner) TakeSolveErr() error {
	err := pl.solveErr
	pl.solveErr = nil
	return err
}

// Full-solve trigger labels (the dvecap_full_solves_total counter):
// triggerDrift is the pQoS quality guard, triggerImbalance the
// utilization-spread guard, triggerEpoch every explicit FullSolve call —
// the initial solve, fallback cadences, POST /v1/reassign.
const (
	triggerDrift     = "drift"
	triggerImbalance = "imbalance"
	triggerEpoch     = "epoch"
)

// FullSolve re-runs the configured two-phase algorithm over the planner's
// whole problem and adopts the result as the new drift baseline. Callers
// running a fallback cadence invoke this on their timer; the drift guard
// invokes it automatically when armed.
func (pl *Planner) FullSolve() error { return pl.fullSolve(triggerEpoch) }

func (pl *Planner) fullSolve(trigger string) error {
	start := pl.teleStart()
	algo := pl.cfg.Algo
	if pl.cfg.StickyBonus > 0 && pl.ev != nil {
		algo = algo.WithSticky(pl.ZoneServers(), pl.cfg.StickyBonus)
	}
	opt := pl.cfg.Opt
	if pl.availableServers() < len(pl.drained) {
		// An in-flight drain survives the full solve: cordoned servers
		// take no zones and no contacts, not even as spill.
		opt.Cordoned = pl.drained
	}
	a, err := algo.Solve(pl.rng.Split(), pl.prob, opt)
	if err != nil {
		return fmt.Errorf("repair: full solve: %w", err)
	}
	if pl.ev != nil {
		for z, s := range a.ZoneServer {
			if pl.ev.ZoneHost(z) != s {
				pl.stats.ZoneHandoffs++
			}
		}
		pl.ev.Reset(pl.prob, a)
	} else {
		pl.ev = core.NewEvaluator(pl.prob, a)
		pl.ev.SetWorkers(pl.cfg.Opt.Workers)
		if pl.tele.on {
			pl.ev.SetTelemetry(pl.tele.reg)
		}
	}
	pl.stats.FullSolves++
	pl.stats.BaselinePQoS = pl.ev.PQoS()
	pl.stats.LastDriftPQoS = 0
	// The solve's own spread re-anchors the imbalance guard: drift is
	// measured against what a full solve can actually achieve.
	pl.stats.BaselineUtilSpread = pl.utilSpread()
	pl.stats.LastUtilSpread = pl.stats.BaselineUtilSpread
	pl.stats.LastSolveError = ""
	pl.eventsSinceFull = 0
	pl.failBackoff = 0
	pl.teleFullSolve(trigger, start)
	pl.syncTele()
	return nil
}

// SetAdjacency installs (or, with weight 0, removes) the interaction edge
// (a, b) in the planner's zone-adjacency graph — the traffic term's input
// (DESIGN.md §15). Pure bookkeeping, not a churn event: no repair pass
// runs and the drift guard is not consulted. Optimization pressure comes
// from the traffic-aware repair scans that later churn triggers (and from
// Optimize); edits only reshape the objective those scans see.
func (pl *Planner) SetAdjacency(a, b int, w float64) error {
	if err := pl.ev.SetZoneAdjacency(a, b, w); err != nil {
		return err
	}
	pl.stats.AdjacencyEdits++
	pl.syncTele()
	return nil
}

// AddAdjacency accumulates dw > 0 onto interaction edge (a, b) — the
// observed-crossing feedback path of mobility-driven workloads. Same
// bookkeeping-only semantics as SetAdjacency.
func (pl *Planner) AddAdjacency(a, b int, dw float64) error {
	if err := pl.ev.AddZoneAdjacency(a, b, dw); err != nil {
		return err
	}
	pl.stats.AdjacencyEdits++
	pl.syncTele()
	return nil
}

// TrafficCut returns the maintained solution's cross-server cut weight —
// the summed weight of interaction edges whose endpoint zones are hosted
// apart. 0 without an adjacency graph.
func (pl *Planner) TrafficCut() float64 { return pl.ev.TrafficCut() }

// TrafficCost returns the weighted traffic term (TrafficWeight ×
// TrafficCut) as it enters the search objective; 0 when the term is off.
func (pl *Planner) TrafficCost() float64 { return pl.ev.TrafficCost() }

// CrossEdges returns how many interaction edges are currently cut, and the
// total edge count. O(edges).
func (pl *Planner) CrossEdges() (cut, total int) { return pl.ev.CrossEdges() }

// Optimize runs up to rounds local-search passes over the live solution —
// zone rehostings plus contact re-placement, under the full objective
// including the traffic term — and returns the number of zones rehosted.
// Unlike FullSolve it starts from the incumbent (no re-solve, no baseline
// re-anchor) and is traffic-aware, so periodic callers use it to
// consolidate interacting zones as observed adjacency weights accumulate.
func (pl *Planner) Optimize(rounds int) int {
	if rounds <= 0 {
		return 0
	}
	before := pl.ZoneServers()
	pl.ev.LocalSearch(rounds)
	moved := 0
	for z, s := range before {
		if pl.ev.ZoneHost(z) != s {
			moved++
		}
	}
	pl.stats.ZoneHandoffs += moved
	pl.syncTele()
	return moved
}

// Contact returns the client's current contact server.
func (pl *Planner) Contact(handle int) (int, error) {
	j, err := pl.index(handle)
	if err != nil {
		return 0, err
	}
	return pl.ev.Contact(j), nil
}

// ZoneHost returns the server currently hosting zone z.
func (pl *Planner) ZoneHost(z int) int { return pl.ev.ZoneHost(z) }

// ZoneServers returns a fresh copy of the current zone hosting.
func (pl *Planner) ZoneServers() []int {
	out := make([]int, pl.prob.NumZones)
	for z := range out {
		out[z] = pl.ev.ZoneHost(z)
	}
	return out
}

// ClientDelay returns the client's current effective delay.
func (pl *Planner) ClientDelay(handle int) (float64, error) {
	j, err := pl.index(handle)
	if err != nil {
		return 0, err
	}
	return pl.ev.ClientDelay(j), nil
}

// Index returns the client's current dense index in Problem/Assignment
// order. Indices shift on leaves; handles do not.
func (pl *Planner) Index(handle int) (int, error) { return pl.index(handle) }

// NumClients returns the current population.
func (pl *Planner) NumClients() int { return pl.ev.NumClients() }

// PQoS returns the maintained solution's fraction of clients in bound.
func (pl *Planner) PQoS() float64 { return pl.ev.PQoS() }

// WithQoS returns the absolute count of clients in bound.
func (pl *Planner) WithQoS() int { return pl.ev.WithQoS() }

// Utilization returns total server load over total AVAILABLE capacity: a
// draining server's capacity has left the fleet until it is uncordoned,
// so utilization rises during a rolling deploy exactly as a real fleet's
// does.
func (pl *Planner) Utilization() float64 {
	c := pl.prob.TotalCapacity()
	for i, d := range pl.drained {
		if d {
			c -= pl.prob.ServerCaps[i]
		}
	}
	if c > 0 {
		return pl.ev.TotalLoad() / c
	}
	return 0
}

// utilSpread returns max−min per-server utilization (load/capacity) over
// the non-draining fleet — the imbalance the spread guard watches. 0 with
// fewer than two available servers.
func (pl *Planner) utilSpread() float64 {
	lo, hi, n := 0.0, 0.0, 0
	for i, d := range pl.drained {
		if d {
			continue
		}
		u := pl.ev.ServerLoad(i) / pl.prob.ServerCaps[i]
		if n == 0 || u < lo {
			lo = u
		}
		if n == 0 || u > hi {
			hi = u
		}
		n++
	}
	if n < 2 {
		return 0
	}
	return hi - lo
}

// Stats returns the planner's counters.
func (pl *Planner) Stats() Stats { return pl.stats }

// Assignment returns a fresh copy of the maintained solution, in the
// planner's dense client order (see Index).
func (pl *Planner) Assignment() *core.Assignment { return pl.ev.Assignment() }

// Problem exposes the planner's problem mirror. Callers must treat it as
// read-only; it is kept consistent with the evaluator by the event API.
func (pl *Planner) Problem() *core.Problem { return pl.prob }

// Evaluator exposes the underlying evaluator for metrics readers and
// equivalence tests. Callers must not apply moves through it.
func (pl *Planner) Evaluator() *core.Evaluator { return pl.ev }
