package core

import (
	"testing"
)

// These tests pin the processing-order semantics of the paper's pseudocode
// (Figs. 2 and 3): items are placed in descending order of regret — the
// gap between their best and second-best server — so that under capacity
// contention the item that would suffer most from missing its best server
// wins it. A naive index-order greedy produces measurably worse
// assignments on these instances, so the tests fail if the order regresses.

// TestGreZProcessesHighRegretZonesFirst: two zones both prefer server 0,
// which can host only one of them. Zone 1 loses 5 clients if displaced,
// zone 0 loses only 1 — GreZ must give server 0 to zone 1.
func TestGreZProcessesHighRegretZonesFirst(t *testing.T) {
	p := &Problem{
		ServerCaps: []float64{5.5, 10},
		// zone 0: one client; zone 1: five clients.
		ClientZones: []int{0, 1, 1, 1, 1, 1},
		NumZones:    2,
		ClientRT:    []float64{1, 1, 1, 1, 1, 1},
		CS: [][]float64{
			// zone-0 client: fine on s0, misses the bound on s1.
			{100, 300},
			// zone-1 clients: fine on s0, all miss the bound on s1.
			{100, 300},
			{100, 300},
			{100, 300},
			{100, 300},
			{100, 300},
		},
		SS: [][]float64{{0, 50}, {50, 0}},
		D:  250,
	}
	// Regrets: zone 0 → 1 (one stranded client), zone 1 → 5. Server 0 fits
	// only one zone's load (5.5 < 5+1).
	target, err := GreZ(nil, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if target[1] != 0 {
		t.Fatalf("high-regret zone placed on %d, want 0 (regret order violated)", target[1])
	}
	if target[0] != 1 {
		t.Fatalf("low-regret zone placed on %d, want 1", target[0])
	}
	if cost := IAPCost(p, target); cost != 1 {
		t.Fatalf("IAP cost %d, want 1 (index-order greedy would give 5)", cost)
	}
}

// TestGreCProcessesHighRegretClientsFirst: two late clients compete for
// the single 2×RT forwarding slot on the helper server. The client whose
// fallback is worse (higher regret) must win the slot.
func TestGreCProcessesHighRegretClientsFirst(t *testing.T) {
	p := &Problem{
		ServerCaps: []float64{10, 2}, // helper s1 fits exactly one 2×RT load
		// Client 0 (low regret) listed first to catch index-order greedies.
		ClientZones: []int{0, 0},
		NumZones:    1,
		ClientRT:    []float64{1, 1},
		CS: [][]float64{
			// client 0: direct 300 (excess 50), via s1: 150+50=200 (ok).
			{300, 150},
			// client 1: direct 400 (excess 150), via s1: 200+50=250 (ok).
			{400, 200},
		},
		SS: [][]float64{{0, 50}, {50, 0}},
		D:  250,
	}
	// Capacity: zone load 2 on s0; helper slot on s1 = 2 (one client).
	zoneServer := []int{0}
	contact, err := GreC(nil, p, zoneServer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if contact[1] != 1 {
		t.Fatalf("high-regret client contact = %d, want the helper server 1", contact[1])
	}
	if contact[0] != 0 {
		t.Fatalf("low-regret client contact = %d, want target fallback 0", contact[0])
	}
	a := &Assignment{ZoneServer: zoneServer, ClientContact: contact}
	// Regret order strands the cheap client: total excess 50. Index order
	// would strand the expensive one: excess 150.
	if cost := RAPCost(p, a); cost != 50 {
		t.Fatalf("RAP cost %v, want 50 (index-order greedy would give 150)", cost)
	}
}

// TestRanZIgnoresDelaysEntirely: RanZ must distribute zones without
// consulting CS at all — two statistically distinguishable servers (one
// with awful delays) should both receive zones across seeds.
func TestRanZIgnoresDelaysEntirely(t *testing.T) {
	p := tinyProblem()
	for j := range p.CS {
		p.CS[j][1] = 500 // server 1 is useless delay-wise
	}
	sawServer1 := false
	for seed := uint64(0); seed < 20 && !sawServer1; seed++ {
		target, err := RanZ(newRNG(seed), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range target {
			if s == 1 {
				sawServer1 = true
			}
		}
	}
	if !sawServer1 {
		t.Fatal("RanZ never used the high-delay server across 20 seeds; it is not delay-oblivious")
	}
}

// TestGreZFillsByDesirabilityNotCapacity: when the most desirable server
// is full, GreZ walks the preference list (not the residual-capacity
// list).
func TestGreZFillsByDesirabilityNotCapacity(t *testing.T) {
	p := &Problem{
		ServerCaps:  []float64{1, 3, 10}, // s2 has the most room but worst delay
		ClientZones: []int{0, 1},
		NumZones:    2,
		ClientRT:    []float64{1, 1},
		CS: [][]float64{
			{100, 200, 400}, // zone 0 client: s0 ok, s1 ok, s2 misses
			{100, 200, 400}, // zone 1 client: same
		},
		SS: [][]float64{{0, 10, 10}, {10, 0, 10}, {10, 10, 0}},
		D:  250,
	}
	target, err := GreZ(nil, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One zone takes s0; the displaced zone must take s1 (second choice,
	// cost 0), never s2 (cost 1) despite s2's larger residual.
	for z, s := range target {
		if s == 2 {
			t.Fatalf("zone %d sent to the worst server despite a free better one", z)
		}
	}
	if IAPCost(p, target) != 0 {
		t.Fatalf("IAP cost %d, want 0", IAPCost(p, target))
	}
}
