package core

import "slices"

// InitialCosts computes the IAP cost matrix of Equation (3):
// CI[i][j] = |{c in zone j : d(c, s_i) > D}| — the number of clients of
// zone j left without QoS if zone j is hosted on server i.
// The result is indexed [server][zone] and freshly allocated; the greedy
// algorithms go through Workspace.initialCosts to reuse buffers instead.
func InitialCosts(p *Problem) [][]int {
	var w Workspace
	return w.initialCosts(p)
}

// RefinedCost computes the RAP cost metric of Equation (8) for selecting
// server i as the contact of client j whose target server is t:
// how far the resulting effective delay overshoots the bound (0 if within).
func RefinedCost(p *Problem, j, i, t int) float64 {
	d := p.CSAt(j, i)
	if i != t {
		d += p.SS[i][t]
	}
	if d > p.D {
		return d - p.D
	}
	return 0
}

// desirabilityList is a server preference list for one item (zone or
// client): servers sorted by descending desirability µ = -cost, ties broken
// by ascending server index so every algorithm is deterministic.
type desirabilityList struct {
	item    int       // zone or client index
	servers []int     // candidate servers, best first
	mu      []float64 // µ value per entry of servers
	regret  float64   // µ[0] - µ[1]; 0 when only one server exists
}

// buildDesirability constructs the sorted preference list for one item
// given its per-server desirability values, allocating fresh backing.
func buildDesirability(item int, mu []float64) desirabilityList {
	m := len(mu)
	return buildDesirabilityInto(item, mu, make([]int, m), make([]float64, m))
}

// buildDesirabilityInto is buildDesirability writing into caller-provided
// backing slices (each of length len(mu)), so preference-list construction
// over many items reuses one flat allocation (see Workspace.desirability).
func buildDesirabilityInto(item int, mu []float64, servers []int, muSorted []float64) desirabilityList {
	m := len(mu)
	for i := range servers {
		servers[i] = i
	}
	// (µ desc, index asc) is a total order, so the result is deterministic
	// and identical to the stable insertion sort this replaces — but
	// O(m log m) instead of O(m²).
	slices.SortFunc(servers, func(a, b int) int {
		if mu[a] != mu[b] {
			if mu[a] > mu[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	for idx, s := range servers {
		muSorted[idx] = mu[s]
	}
	dl := desirabilityList{item: item, servers: servers, mu: muSorted}
	if m >= 2 {
		// The paper's ρ: the gap between the best and second-best
		// desirability — the "regret" of not taking the best server.
		dl.regret = muSorted[0] - muSorted[1]
	}
	return dl
}

// sortByRegret orders lists by (regret desc, item asc), the processing
// order of the paper's greedy loops (Figs. 2 and 3). The item tie-break
// makes the order total, so the unstable sort is deterministic.
func sortByRegret(lists []desirabilityList) {
	slices.SortFunc(lists, func(x, y desirabilityList) int {
		if x.regret != y.regret {
			if x.regret > y.regret {
				return -1
			}
			return 1
		}
		return x.item - y.item
	})
}
