package repair

import (
	"fmt"

	"dvecap/internal/core"
	"dvecap/internal/xrand"
)

// State is the planner sidecar a durable snapshot needs beyond the problem
// itself (which WriteClusterJSON already round-trips byte-identically): the
// maintained assignment, the evaluator's history-dependent accumulators and
// bucket order (core.EvaluatorState), the cordon set, the drift-guard
// counters and the RNG position. NewFromState rebuilds a planner that
// continues the captured trajectory bit-identically — same repair
// decisions, same guard firings, same full-solve randomness — which is
// what lets crash recovery be verified as exact equivalence rather than
// "close enough" (DESIGN.md §11).
//
// Client handles are NOT part of the state: handle numbers never influence
// a placement decision (they only route lookups), so recovery renumbers
// clients 0..k-1 in dense order and RestoreIDBinding re-ties external IDs
// to the fresh handles.
type State struct {
	// ZoneServer and ClientContact are the maintained assignment in the
	// planner's dense order.
	ZoneServer    []int `json:"zone_server"`
	ClientContact []int `json:"client_contact"`
	// Eval is the evaluator's history-dependent sidecar.
	Eval *core.EvaluatorState `json:"eval"`
	// Drained mirrors the cordon set (one flag per dense server).
	Drained []bool `json:"drained,omitempty"`
	// Stats, EventsSinceFull and FailBackoff are the guard's counters.
	Stats           Stats `json:"stats"`
	EventsSinceFull int   `json:"events_since_full"`
	FailBackoff     int   `json:"fail_backoff,omitempty"`
	// RNG is the planner's generator position (value stream and split
	// counter), so post-recovery full solves draw the same randomness.
	RNG xrand.State `json:"rng"`
}

// ExportState captures everything NewFromState needs to continue the
// planner's trajectory. The problem itself is snapshotted separately.
func (pl *Planner) ExportState() (*State, error) {
	rst, err := pl.rng.State()
	if err != nil {
		return nil, fmt.Errorf("repair: export RNG: %w", err)
	}
	a := pl.ev.Assignment()
	return &State{
		ZoneServer:      a.ZoneServer,
		ClientContact:   a.ClientContact,
		Eval:            pl.ev.ExportState(),
		Drained:         append([]bool(nil), pl.drained...),
		Stats:           pl.stats,
		EventsSinceFull: pl.eventsSinceFull,
		FailBackoff:     pl.failBackoff,
		RNG:             rst,
	}, nil
}

// NewFromState rebuilds a planner over a clone of p continuing exactly
// where st was captured: no solve runs, the stored assignment is adopted,
// the evaluator's accumulators and bucket order are installed verbatim and
// the RNG resumes its stream. Clients receive fresh handles 0..k-1 in
// dense problem order. The state is validated against p before anything
// is adopted.
func NewFromState(cfg Config, p *core.Problem, st *State) (*Planner, error) {
	rng, err := xrand.Restore(st.RNG)
	if err != nil {
		return nil, fmt.Errorf("repair: restore RNG: %w", err)
	}
	pl, err := prepare(cfg, p, rng)
	if err != nil {
		return nil, err
	}
	a := &core.Assignment{
		ZoneServer:    append([]int(nil), st.ZoneServer...),
		ClientContact: append([]int(nil), st.ClientContact...),
	}
	if err := a.Validate(pl.prob); err != nil {
		return nil, fmt.Errorf("repair: stored assignment: %w", err)
	}
	if st.Drained != nil && len(st.Drained) != pl.prob.NumServers() {
		return nil, fmt.Errorf("repair: state has %d drain flags, problem has %d servers", len(st.Drained), pl.prob.NumServers())
	}
	if st.Eval == nil {
		return nil, fmt.Errorf("repair: state has no evaluator sidecar")
	}
	pl.ev = core.NewEvaluator(pl.prob, a)
	pl.ev.SetWorkers(cfg.Opt.Workers)
	if err := pl.ev.RestoreState(st.Eval); err != nil {
		return nil, err
	}
	if st.Drained != nil {
		copy(pl.drained, st.Drained)
		for i, c := range st.Eval.Cordoned {
			if pl.drained[i] != c {
				return nil, fmt.Errorf("repair: drain flag for server %d disagrees with evaluator cordon", i)
			}
		}
	}
	pl.stats = st.Stats
	pl.eventsSinceFull = st.EventsSinceFull
	pl.failBackoff = st.FailBackoff
	return pl, nil
}

// RestoreIDBinding rebuilds the ID layer over a recovered planner: ids[j]
// names the client at dense index j (registration order IS dense order
// after NewFromState's renumbering), serverIDs and zoneIDs name the
// topology. One call replaces NewIDBinding + NameTopology for recovery.
func RestoreIDBinding(pl *Planner, ids, serverIDs, zoneIDs []string) (*IDBinding, error) {
	b, err := NewIDBinding(pl, ids)
	if err != nil {
		return nil, err
	}
	if err := b.NameTopology(serverIDs, zoneIDs); err != nil {
		return nil, err
	}
	return b, nil
}
