package experiments

import (
	"fmt"
	"strings"

	"dvecap/internal/core"
	"dvecap/internal/dve"
	"dvecap/internal/metrics"
	"dvecap/internal/runner"
	"dvecap/internal/xrand"
)

// Fig4Options tunes the delay-CDF experiment.
type Fig4Options struct {
	// Scenario defaults to the paper's 30s-160z-2000c-1000cp.
	Scenario string
	// Steps is the number of CDF sample points per series (default 25).
	Steps int
	// FromMs/ToMs bound the plotted delay range; the paper's Figure 4 axis
	// runs from 250 ms (the delay bound) to 500 ms (the max RTT).
	FromMs, ToMs float64
}

// Fig4Series is one algorithm's CDF curve.
type Fig4Series struct {
	Algorithm string
	Points    []metrics.Point
	// PAtBound is the CDF value at the delay bound = the algorithm's pQoS.
	PAtBound float64
}

// Fig4Result reproduces "Figure 4. Cumulative distribution of delays":
// the CDF of every client's effective delay to its target server, per
// algorithm, pooled over all replications.
type Fig4Result struct {
	Scenario string
	BoundMs  float64
	Series   []Fig4Series
}

// Fig4 runs the experiment.
func Fig4(setup Setup, opt Fig4Options) (*Fig4Result, error) {
	setup = setup.withDefaults()
	if opt.Scenario == "" {
		opt.Scenario = "30s-160z-2000c-1000cp"
	}
	if opt.Steps <= 0 {
		opt.Steps = 25
	}
	cfg, err := dve.ParseScenario(dve.DefaultConfig(), opt.Scenario)
	if err != nil {
		return nil, err
	}
	if opt.FromMs == 0 {
		opt.FromMs = cfg.DelayBoundMs
	}
	if opt.ToMs == 0 {
		opt.ToMs = setup.MaxRTTMs
	}
	algos := core.PaperAlgorithms()
	names := algorithmNames(algos)

	type delays map[string][]float64
	reps, err := runner.Run(setup.Seed, setup.Reps, func(rep int, rng *xrand.RNG) (delays, error) {
		world, err := setup.buildWorld(rng.Split(), cfg)
		if err != nil {
			return nil, err
		}
		truth := world.Problem()
		sopt := scratchOpts()
		out := make(delays, len(algos))
		for _, tp := range algos {
			a, err := tp.Solve(rng.Split(), truth, sopt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", tp.Name, err)
			}
			out[tp.Name] = core.Evaluate(truth, a).Delays
		}
		return out, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}

	res := &Fig4Result{Scenario: opt.Scenario, BoundMs: cfg.DelayBoundMs}
	for _, name := range names {
		var pooled []float64
		for _, rm := range reps {
			pooled = append(pooled, rm[name]...)
		}
		cdf := metrics.NewCDF(pooled)
		res.Series = append(res.Series, Fig4Series{
			Algorithm: name,
			Points:    cdf.Series(opt.FromMs, opt.ToMs, opt.Steps),
			PAtBound:  cdf.At(cfg.DelayBoundMs),
		})
	}
	return res, nil
}

// String renders an ASCII chart followed by the labelled two-column series.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: CDF of client→target delays (%s, D = %.0f ms)\n\n", r.Scenario, r.BoundMs)
	plot := &metrics.Plot{XLabel: "delay (ms)", Width: 64, Height: 16}
	for _, s := range r.Series {
		plot.AddSeries(s.Algorithm, s.Points)
	}
	b.WriteString(plot.String())
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\n# %s (CDF at bound = %.3f)\n", s.Algorithm, s.PAtBound)
		b.WriteString(metrics.FormatSeries(s.Points))
	}
	return b.String()
}
