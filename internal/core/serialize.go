package core

import (
	"encoding/json"
	"fmt"
	"io"

	"dvecap/internal/interact"
)

// problemJSON is the interchange form of a Problem. Field names are stable;
// the format is the contract between cmd/capassign runs and any external
// tooling that wants to feed real measurements into the solver.
type problemJSON struct {
	ServerCaps  []float64   `json:"server_caps_mbps"`
	ClientZones []int       `json:"client_zones"`
	NumZones    int         `json:"num_zones"`
	ClientRT    []float64   `json:"client_rt_mbps"`
	CS          [][]float64 `json:"client_server_rtt_ms"`
	SS          [][]float64 `json:"server_server_rtt_ms"`
	D           float64     `json:"delay_bound_ms"`
	// ZoneAdjacency is the interaction graph's canonical edge list (a < b,
	// sorted) and TrafficWeight its objective weight (DESIGN.md §15); both
	// absent for problems without the traffic term.
	ZoneAdjacency []interact.Edge `json:"zone_adjacency,omitempty"`
	TrafficWeight float64         `json:"traffic_weight,omitempty"`
}

// WriteJSON serialises the problem. Provider-backed problems are
// materialised to the dense interchange form — the format carries the full
// client×server matrix, so round-tripping a sparse provider through JSON
// preserves its observable delays but not its compressed representation.
func (p *Problem) WriteJSON(w io.Writer) error {
	cs := p.CS
	if p.Delays != nil {
		k, m := p.NumClients(), p.NumServers()
		cs = make([][]float64, k)
		flat := make([]float64, k*m)
		for j := range cs {
			cs[j] = p.Delays.Row(j, flat[j*m:(j+1)*m])
		}
	}
	pj := problemJSON{
		ServerCaps:  p.ServerCaps,
		ClientZones: p.ClientZones,
		NumZones:    p.NumZones,
		ClientRT:    p.ClientRT,
		CS:          cs,
		SS:          p.SS,
		D:           p.D,

		TrafficWeight: p.TrafficWeight,
	}
	if p.Adjacency != nil {
		pj.ZoneAdjacency = p.Adjacency.Edges()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pj)
}

// ReadProblemJSON deserialises and validates a problem.
func ReadProblemJSON(r io.Reader) (*Problem, error) {
	var pj problemJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("core: decoding problem: %w", err)
	}
	p := &Problem{
		ServerCaps:  pj.ServerCaps,
		ClientZones: pj.ClientZones,
		NumZones:    pj.NumZones,
		ClientRT:    pj.ClientRT,
		CS:          pj.CS,
		SS:          pj.SS,
		D:           pj.D,

		TrafficWeight: pj.TrafficWeight,
	}
	if len(pj.ZoneAdjacency) > 0 {
		g, err := interact.FromState(&interact.State{NumZones: pj.NumZones, Edges: pj.ZoneAdjacency})
		if err != nil {
			return nil, fmt.Errorf("core: invalid zone adjacency: %w", err)
		}
		p.Adjacency = g
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid problem: %w", err)
	}
	return p, nil
}

// assignmentJSON is the interchange form of an Assignment plus its
// evaluation, so a reader needs no solver to interpret the outcome.
type assignmentJSON struct {
	Algorithm     string    `json:"algorithm,omitempty"`
	ZoneServer    []int     `json:"zone_server"`
	ClientContact []int     `json:"client_contact"`
	PQoS          float64   `json:"pqos"`
	Utilization   float64   `json:"utilization"`
	WithQoS       int       `json:"with_qos"`
	Delays        []float64 `json:"delays_ms,omitempty"`
}

// WriteAssignmentJSON serialises an assignment together with its metrics
// under p.
func WriteAssignmentJSON(w io.Writer, p *Problem, a *Assignment, algorithm string, includeDelays bool) error {
	if err := a.Validate(p); err != nil {
		return err
	}
	m := Evaluate(p, a)
	out := assignmentJSON{
		Algorithm:     algorithm,
		ZoneServer:    a.ZoneServer,
		ClientContact: a.ClientContact,
		PQoS:          m.PQoS,
		Utilization:   m.Utilization,
		WithQoS:       m.WithQoS,
	}
	if includeDelays {
		out.Delays = m.Delays
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadAssignmentJSON deserialises an assignment and validates it against p.
// The stored metrics are ignored (they are advisory); callers re-evaluate.
func ReadAssignmentJSON(r io.Reader, p *Problem) (*Assignment, error) {
	var aj assignmentJSON
	if err := json.NewDecoder(r).Decode(&aj); err != nil {
		return nil, fmt.Errorf("core: decoding assignment: %w", err)
	}
	a := &Assignment{ZoneServer: aj.ZoneServer, ClientContact: aj.ClientContact}
	if err := a.Validate(p); err != nil {
		return nil, fmt.Errorf("core: invalid assignment: %w", err)
	}
	return a, nil
}
