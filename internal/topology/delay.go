package topology

import (
	"fmt"
	"math"
)

// DelayMatrix holds round-trip network delays, in milliseconds, between all
// node pairs of a topology, post-processed the way the paper's simulations
// post-process BRITE output:
//
//   - shortest-path delays are scaled so the maximum round-trip delay
//     between any two nodes equals MaxRTT (500 ms in the paper), and
//   - delays between two *servers* are discounted by ServerFactor (0.5 in
//     the paper, citing Lee/Ko/Calo) to model well-provisioned,
//     low-congestion inter-server connections.
//
// The matrix is symmetric with a zero diagonal. Client-server lookups use
// RTT; server-server lookups use ServerRTT.
type DelayMatrix struct {
	rtt          [][]float64
	MaxRTT       float64
	ServerFactor float64
}

// NewDelayMatrix computes the all-pairs round-trip delay matrix of g,
// scaled so the largest finite RTT equals maxRTT. serverFactor is the
// multiplier applied to inter-server delays (use 0.5 for the paper's
// well-provisioned mesh; 1.0 disables the discount). The graph must be
// non-empty and connected.
func NewDelayMatrix(g *Graph, maxRTT, serverFactor float64) (*DelayMatrix, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("topology: delay matrix of empty graph")
	}
	if maxRTT <= 0 {
		return nil, fmt.Errorf("topology: maxRTT = %v, want > 0", maxRTT)
	}
	if serverFactor <= 0 || serverFactor > 1 {
		return nil, fmt.Errorf("topology: serverFactor = %v, want (0,1]", serverFactor)
	}
	oneWay := g.AllPairsShortest()
	var maxD float64
	for _, row := range oneWay {
		for _, d := range row {
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("topology: graph is disconnected; delay matrix undefined")
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	scale := 1.0
	if maxD > 0 {
		// RTT = 2 × one-way, so the scale maps 2·maxD onto maxRTT.
		scale = maxRTT / (2 * maxD)
	}
	n := g.N()
	rtt := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range rtt {
		rtt[i], flat = flat[:n], flat[n:]
		for j := 0; j < n; j++ {
			rtt[i][j] = 2 * oneWay[i][j] * scale
		}
	}
	return &DelayMatrix{rtt: rtt, MaxRTT: maxRTT, ServerFactor: serverFactor}, nil
}

// NewDelayMatrixFromRTT wraps a precomputed symmetric RTT matrix (ms).
// Used by tests and by the estimator package to build perturbed copies.
func NewDelayMatrixFromRTT(rtt [][]float64, serverFactor float64) (*DelayMatrix, error) {
	n := len(rtt)
	var maxD float64
	for i, row := range rtt {
		if len(row) != n {
			return nil, fmt.Errorf("topology: RTT matrix row %d has length %d, want %d", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 || math.IsNaN(d) {
				return nil, fmt.Errorf("topology: RTT[%d][%d] = %v invalid", i, j, d)
			}
			if i == j && d != 0 {
				return nil, fmt.Errorf("topology: RTT diagonal [%d] = %v, want 0", i, d)
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	if serverFactor <= 0 || serverFactor > 1 {
		return nil, fmt.Errorf("topology: serverFactor = %v, want (0,1]", serverFactor)
	}
	return &DelayMatrix{rtt: rtt, MaxRTT: maxD, ServerFactor: serverFactor}, nil
}

// N returns the number of nodes covered by the matrix.
func (m *DelayMatrix) N() int { return len(m.rtt) }

// RTT returns the round-trip delay in ms between nodes u and v, e.g. a
// client's node and a server's node.
func (m *DelayMatrix) RTT(u, v int) float64 { return m.rtt[u][v] }

// ServerRTT returns the round-trip delay in ms between two *server* nodes,
// with the well-provisioned-interconnect discount applied.
func (m *DelayMatrix) ServerRTT(u, v int) float64 {
	if u == v {
		return 0
	}
	return m.rtt[u][v] * m.ServerFactor
}

// Clone returns a deep copy, so perturbation (estimation-error modelling)
// never aliases the ground-truth matrix.
func (m *DelayMatrix) Clone() *DelayMatrix {
	n := len(m.rtt)
	rtt := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range rtt {
		rtt[i], flat = flat[:n], flat[n:]
		copy(rtt[i], m.rtt[i])
	}
	return &DelayMatrix{rtt: rtt, MaxRTT: m.MaxRTT, ServerFactor: m.ServerFactor}
}

// SetRTT overwrites the symmetric pair (u,v). Used by the estimator.
func (m *DelayMatrix) SetRTT(u, v int, d float64) {
	if d < 0 || math.IsNaN(d) {
		panic("topology: SetRTT with invalid delay")
	}
	m.rtt[u][v] = d
	m.rtt[v][u] = d
}

// MaxObservedRTT returns the largest entry actually present.
func (m *DelayMatrix) MaxObservedRTT() float64 {
	var maxD float64
	for _, row := range m.rtt {
		for _, d := range row {
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// CheckSymmetric verifies symmetry and a zero diagonal within tol.
func (m *DelayMatrix) CheckSymmetric(tol float64) error {
	n := len(m.rtt)
	for i := 0; i < n; i++ {
		if m.rtt[i][i] != 0 {
			return fmt.Errorf("diagonal [%d] = %v", i, m.rtt[i][i])
		}
		for j := i + 1; j < n; j++ {
			if math.Abs(m.rtt[i][j]-m.rtt[j][i]) > tol {
				return fmt.Errorf("asymmetric at (%d,%d): %v vs %v", i, j, m.rtt[i][j], m.rtt[j][i])
			}
		}
	}
	return nil
}
