package topology

import "math"

// PathStats summarises the shortest-path structure of a connected graph:
// useful to verify that generated topologies look Internet-like (small
// diameter, short average paths) before trusting experiment results on
// them.
type PathStats struct {
	// AvgDelay is the mean shortest-path delay over all ordered pairs
	// (excluding self-pairs), in the graph's delay unit.
	AvgDelay float64
	// Diameter is the maximum finite shortest-path delay.
	Diameter float64
	// AvgHops is the mean shortest-path hop count over all ordered pairs.
	AvgHops float64
	// HopDiameter is the maximum finite hop count.
	HopDiameter int
	// Connected reports whether every pair was reachable.
	Connected bool
}

// PathStats computes the summary (O(n·(m+n log n)) via repeated Dijkstra
// plus BFS). For the 500-node experiment topologies this takes
// milliseconds.
func (g *Graph) PathStats() PathStats {
	n := g.N()
	out := PathStats{Connected: true}
	if n < 2 {
		return out
	}
	delays := g.AllPairsShortest()
	var sumD float64
	var pairs int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := delays[i][j]
			if math.IsInf(d, 1) {
				out.Connected = false
				continue
			}
			sumD += d
			if d > out.Diameter {
				out.Diameter = d
			}
			pairs++
		}
	}
	if pairs > 0 {
		out.AvgDelay = sumD / float64(pairs)
	}
	// Hop counts via BFS from every source.
	g.buildAdj()
	var sumH float64
	var hopPairs int
	queue := make([]int, 0, n)
	hops := make([]int, n)
	for s := 0; s < n; s++ {
		for i := range hops {
			hops[i] = -1
		}
		hops[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.adj[v] {
				if hops[h.to] < 0 {
					hops[h.to] = hops[v] + 1
					queue = append(queue, h.to)
				}
			}
		}
		for v, hc := range hops {
			if v == s || hc < 0 {
				continue
			}
			sumH += float64(hc)
			hopPairs++
			if hc > out.HopDiameter {
				out.HopDiameter = hc
			}
		}
	}
	if hopPairs > 0 {
		out.AvgHops = sumH / float64(hopPairs)
	}
	return out
}

// ClusteringCoefficient returns the mean local clustering coefficient:
// for each node with degree >= 2, the fraction of its neighbour pairs that
// are themselves linked. Heavily meshed router-level graphs score high;
// trees score 0.
func (g *Graph) ClusteringCoefficient() float64 {
	g.buildAdj()
	n := g.N()
	var sum float64
	var counted int
	for v := 0; v < n; v++ {
		neigh := g.adj[v]
		if len(neigh) < 2 {
			continue
		}
		links := 0
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				if g.HasEdge(neigh[i].to, neigh[j].to) {
					links++
				}
			}
		}
		possible := len(neigh) * (len(neigh) - 1) / 2
		sum += float64(links) / float64(possible)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}
