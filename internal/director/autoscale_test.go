package director

// Director-side autoscaling tests: the reconciler drives the journaled
// live-topology verbs (uncordon a warm spare, drain, retire the tail),
// the HTTP surface inspects and overrides the policy, and warm-spare
// registrations recover bit-identically through the write-ahead log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"dvecap/internal/autoscale"
	"dvecap/internal/topology"
	"dvecap/internal/xrand"
)

func TestEnableAutoscale(t *testing.T) {
	d := testDirector(t)
	if st := d.AutoscaleStatus(); st.Enabled {
		t.Fatal("autoscale reported enabled before EnableAutoscale")
	}
	if d.Autoscale() != nil {
		t.Fatal("Autoscale() non-nil before enable")
	}
	if err := d.EnableAutoscale(autoscale.Config{UtilLow: 0.9, UtilHigh: 0.5}); err == nil {
		t.Fatal("contradictory config accepted")
	}
	if err := d.EnableAutoscale(autoscale.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableAutoscale(autoscale.Config{}); err == nil {
		t.Fatal("double enable accepted")
	}
	st := d.AutoscaleStatus()
	if !st.Enabled || st.Paused || st.Ticks != 0 || len(st.Decisions) != 0 {
		t.Fatalf("fresh status = %+v", st)
	}
	if st.Config.UtilHigh != 0.85 || st.Config.LowWindowTicks != 6 {
		t.Fatalf("status config not defaulted: %+v", st.Config)
	}
}

// TestAutoscaleSpareCapacityExcluded pins the warm-pool contract at the
// director layer: a spare arrives cordoned, hosts nothing, and its
// capacity stays out of the utilization denominator until admitted.
func TestAutoscaleSpareCapacityExcluded(t *testing.T) {
	d := testDirector(t)
	for i := 0; i < 40; i++ {
		if _, err := d.Join("", (i*7)%40, i%8); err != nil {
			t.Fatal(err)
		}
	}
	before := d.planner().Utilization()
	info, err := d.AddSpareServer(35, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Draining || info.Zones != 0 || info.Server != 4 {
		t.Fatalf("spare info = %+v, want draining, empty, index 4", info)
	}
	if after := d.planner().Utilization(); after != before {
		t.Fatalf("utilization moved %v -> %v on spare registration", before, after)
	}
	if _, err := d.AddSpareServer(99, 50); err == nil {
		t.Fatal("spare at node outside topology accepted")
	}
}

// TestAutoscaleScaleUpAdmitsSpare loads the fleet past the high
// watermark and requires one reconcile cycle to uncordon the warm spare
// — and the flow-back to land load on it.
func TestAutoscaleScaleUpAdmitsSpare(t *testing.T) {
	d := testDirector(t)
	if _, err := d.AddSpareServer(35, 50); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableAutoscale(autoscale.Config{
		UtilHigh: 0.5, UtilLow: 0.1,
		HighWindowTicks: 1, LowWindowTicks: 1,
		UpCooldownTicks: -1, DownCooldownTicks: -1,
	}); err != nil {
		t.Fatal(err)
	}
	// 25 clients in each of 8 zones: the quadratic per-zone demand puts
	// utilization over 0.5 on the 200 Mbps active fleet.
	for i := 0; i < 200; i++ {
		if _, err := d.Join(fmt.Sprintf("c%03d", i), (i*7)%40, i%8); err != nil {
			t.Fatal(err)
		}
	}
	rec := d.Autoscale()
	dec, err := rec.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Action != autoscale.ActionScaleUp || dec.Target != "s4" {
		t.Fatalf("decision = %+v, want scale_up of s4 (util %v)", dec, dec.Utilization)
	}
	srv := d.Servers()[4]
	if srv.Draining {
		t.Fatal("s4 still draining after scale-up")
	}
	// The admitted capacity joins the utilization denominator immediately.
	if after := d.planner().Utilization(); after >= dec.Utilization {
		t.Fatalf("utilization %v -> %v across the admit, want a drop", dec.Utilization, after)
	}
	st := d.AutoscaleStatus()
	if st.Ticks != 1 || len(st.Decisions) != 1 || st.Decisions[0] != dec {
		t.Fatalf("status after scale-up = %+v", st)
	}
}

// TestAutoscaleDrainAndRetire walks a full scale-down: sustained low
// water drains the least-loaded server, the retire grace elapses, and —
// because the victim is the fleet's tail index — the reconciler removes
// it from the topology entirely.
func TestAutoscaleDrainAndRetire(t *testing.T) {
	g, err := topology.Waxman(xrand.New(5), topology.DefaultWaxman(40))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := topology.NewDelayMatrix(g, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		ServerNodes:  []int{0, 10},
		ServerCaps:   []float64{50, 50},
		Zones:        2,
		Delays:       dm,
		DelayBoundMs: 250,
		FrameRate:    25,
		MessageBytes: 100,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnableAutoscale(autoscale.Config{
		UtilHigh: 0.9, UtilLow: 0.5,
		HighWindowTicks: 1, LowWindowTicks: 1,
		UpCooldownTicks: -1, DownCooldownTicks: -1,
		RetireAfterTicks: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A handful of clients: utilization stays under the low watermark, and
	// with everything light the least-loaded victim is the empty tail.
	for i := 0; i < 4; i++ {
		if _, err := d.Join("", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	rec := d.Autoscale()

	dec, err := rec.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Action != autoscale.ActionScaleDown {
		t.Fatalf("tick 1 = %+v, want scale_down", dec)
	}
	victim := dec.Target
	if !d.Servers()[1].Draining && !d.Servers()[0].Draining {
		t.Fatal("no server draining after scale-down")
	}

	// Grace = 1 tick: the next cycle ages the drain to 1 (not yet), the
	// one after crosses it. Low water persists but MinActive=1 holds
	// further drains.
	if dec, err = rec.Tick(); err != nil || dec.Action != autoscale.ActionNone {
		t.Fatalf("tick 2 = %+v, %v, want hold", dec, err)
	}
	if dec.Reason != autoscale.ReasonAtMin {
		t.Fatalf("tick 2 hold reason %q, want %q", dec.Reason, autoscale.ReasonAtMin)
	}
	if _, err = rec.Tick(); err != nil {
		t.Fatal(err)
	}

	if victim == "s1" {
		// Tail victim: retired outright.
		if n := len(d.Servers()); n != 1 {
			t.Fatalf("%d servers after retire, want 1", n)
		}
		log := rec.Decisions()
		last := log[len(log)-1]
		if last.Action != autoscale.ActionRetire || last.Target != "s1" || last.Reason != autoscale.ReasonRetireAge {
			t.Fatalf("last decision = %+v, want retire of s1", last)
		}
	} else {
		// Non-tail victim: removal would renumber live targets, so it must
		// stay in the warm pool instead.
		if n := len(d.Servers()); n != 2 {
			t.Fatalf("%d servers, want 2 (non-tail stays warm)", n)
		}
		for _, dd := range rec.Decisions() {
			if dd.Action == autoscale.ActionRetire {
				t.Fatalf("non-tail %s was retired: %+v", victim, dd)
			}
		}
	}
}

// TestAutoscaleOperatorDrainNeverRetired pins the ownership rule: the
// retire grace only tracks servers the reconciler's own scale-downs
// drained. A spare registered by an operator sits in the pool forever.
func TestAutoscaleOperatorDrainNeverRetired(t *testing.T) {
	d := testDirector(t)
	if _, err := d.AddSpareServer(35, 50); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableAutoscale(autoscale.Config{
		UtilHigh: 0.9, UtilLow: 0.5,
		HighWindowTicks: 1, LowWindowTicks: 1,
		DownCooldownTicks: -1,
		MinActive:         4,
		RetireAfterTicks:  1,
	}); err != nil {
		t.Fatal(err)
	}
	rec := d.Autoscale()
	for i := 0; i < 5; i++ {
		dec, err := rec.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if dec.Action != autoscale.ActionNone {
			t.Fatalf("tick %d fired %+v with the fleet at MinActive", i, dec)
		}
	}
	if n := len(d.Servers()); n != 5 {
		t.Fatalf("%d servers, want 5 — the operator's spare must stay", n)
	}
	if !d.Servers()[4].Draining {
		t.Fatal("operator spare no longer draining")
	}
}

func autoscaleHTTPGet(t *testing.T, srv *httptest.Server) AutoscaleStatus {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/autoscale")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/autoscale: %d", resp.StatusCode)
	}
	var st AutoscaleStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAutoscaleHTTP(t *testing.T) {
	d := testDirector(t)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	if st := autoscaleHTTPGet(t, srv); st.Enabled {
		t.Fatal("enabled before EnableAutoscale")
	}
	// Every POST route conflicts while disabled.
	for _, route := range []string{"config", "pause", "resume", "tick"} {
		resp, err := http.Post(srv.URL+"/v1/autoscale/"+route, "application/json", bytes.NewBufferString("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("POST %s while disabled: %d, want 409", route, resp.StatusCode)
		}
	}

	if err := d.EnableAutoscale(autoscale.Config{}); err != nil {
		t.Fatal(err)
	}

	// Manual tick: one reconcile cycle, decision returned.
	resp, err := http.Post(srv.URL+"/v1/autoscale/tick", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dec autoscale.Decision
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dec.Tick != 0 {
		t.Fatalf("tick: %d %+v", resp.StatusCode, dec)
	}
	if st := autoscaleHTTPGet(t, srv); st.Ticks != 1 {
		t.Fatalf("ticks = %d after one manual tick", st.Ticks)
	}

	// Config override round-trips and resets hysteresis under new
	// watermarks.
	body, _ := json.Marshal(autoscale.Config{UtilHigh: 0.7, UtilLow: 0.3, HighWindowTicks: 2})
	resp, err = http.Post(srv.URL+"/v1/autoscale/config", "application/json", bytes.NewBuffer(body))
	if err != nil {
		t.Fatal(err)
	}
	var st AutoscaleStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Config.UtilHigh != 0.7 || st.Config.HighWindowTicks != 2 {
		t.Fatalf("config override: %d %+v", resp.StatusCode, st.Config)
	}

	// Contradictory and malformed configs are rejected.
	for _, bad := range []string{`{"UtilHigh":0.2,"UtilLow":0.8}`, `{not json`} {
		resp, err := http.Post(srv.URL+"/v1/autoscale/config", "application/json", bytes.NewBufferString(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad config %q: %d, want 400", bad, resp.StatusCode)
		}
	}

	// Pause / resume flip the flag through the status view.
	resp, err = http.Post(srv.URL+"/v1/autoscale/pause", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := autoscaleHTTPGet(t, srv); !st.Paused {
		t.Fatal("not paused after POST /v1/autoscale/pause")
	}
	resp, err = http.Post(srv.URL+"/v1/autoscale/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := autoscaleHTTPGet(t, srv); st.Paused {
		t.Fatal("still paused after POST /v1/autoscale/resume")
	}

	// Method and route errors.
	resp, err = http.Post(srv.URL+"/v1/autoscale", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/autoscale: %d, want 405", resp.StatusCode)
	}
	getTick, err := http.Get(srv.URL + "/v1/autoscale/tick")
	if err != nil {
		t.Fatal(err)
	}
	getTick.Body.Close()
	if getTick.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/autoscale/tick: %d, want 405", getTick.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/autoscale/bogus", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/autoscale/bogus: %d, want 404", resp.StatusCode)
	}
}

// TestSpareServerHTTP registers a warm spare through the REST surface.
func TestSpareServerHTTP(t *testing.T) {
	d := testDirector(t)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/servers", "application/json",
		bytes.NewBufferString(`{"node": 5, "capacity_mbps": 40, "spare": true}`))
	if err != nil {
		t.Fatal(err)
	}
	var info ServerInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !info.Draining || info.Node != 5 {
		t.Fatalf("spare POST: %d %+v, want 201 + draining at node 5", resp.StatusCode, info)
	}
	// Omitting the flag still adds an active server.
	resp, err = http.Post(srv.URL+"/v1/servers", "application/json",
		bytes.NewBufferString(`{"node": 6, "capacity_mbps": 40}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Draining {
		t.Fatal("plain add came up cordoned")
	}
}

// TestAutoscaleDurability replays a trajectory that includes warm-spare
// registration and reconciler-driven verbs through the write-ahead log:
// the recovered director must land bit-identical to an uninterrupted
// control, spare cordons intact.
func TestAutoscaleDurability(t *testing.T) {
	dm := durDelays(t)

	drive := func(d *Director) {
		for i := 0; i < 30; i++ {
			if _, err := d.Join(fmt.Sprintf("c%02d", i), (i*3)%40, i%8); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.AddSpareServer(35, 60); err != nil {
			t.Fatal(err)
		}
		if err := d.EnableAutoscale(autoscale.Config{
			UtilHigh: 0.01, UtilLow: 0.001,
			HighWindowTicks: 1, UpCooldownTicks: -1,
		}); err != nil {
			t.Fatal(err)
		}
		// The tiny watermark guarantees a scale-up: the spare is admitted
		// through the journaled UncordonServer.
		if dec, err := d.Autoscale().Tick(); err != nil || dec.Action != autoscale.ActionScaleUp {
			t.Fatalf("tick = %+v, %v, want scale_up", dec, err)
		}
		if _, err := d.AddSpareServer(22, 45); err != nil {
			t.Fatal(err)
		}
		for i := 30; i < 45; i++ {
			if _, err := d.Join(fmt.Sprintf("c%02d", i), (i*3)%40, i%8); err != nil {
				t.Fatal(err)
			}
		}
	}

	control, err := New(durDirConfig(dm, 1))
	if err != nil {
		t.Fatal(err)
	}
	drive(control)

	cfg := durDirConfig(dm, 1)
	cfg.DataDir = t.TempDir()
	durable, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(durable)
	// Kill: no Close, no checkpoint — recovery replays the log.

	recovered, err := New(cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got, want := dirStateJSON(t, recovered), dirStateJSON(t, control); got != want {
		t.Fatal("recovered autoscaled trajectory diverges from control")
	}
	srv := recovered.Servers()
	if len(srv) != 6 {
		t.Fatalf("%d servers recovered, want 6", len(srv))
	}
	if srv[4].Draining {
		t.Fatal("admitted spare s4 recovered cordoned")
	}
	if !srv[5].Draining {
		t.Fatal("warm spare s5 recovered active — spare flag lost in replay")
	}
}
