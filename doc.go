// Package dvecap is a from-scratch Go reproduction of "Efficient
// Client-to-Server Assignments for Distributed Virtual Environments"
// (Duong Nguyen Binh Ta and Suiping Zhou, IEEE IPDPS 2006).
//
// A distributed virtual environment (DVE) — an online game, a military
// simulation, a shared design space — runs on geographically distributed
// servers, with the virtual world partitioned into zones, each hosted by
// exactly one server. The client assignment problem (CAP) asks: which
// server should host each zone, and which server should each client
// connect to, so that as many clients as possible experience round-trip
// delay to their zone's server within the interactivity bound, without
// overloading any server's bandwidth capacity?
//
// The package exposes the paper's two-phase decomposition and all four of
// its heuristics (RanZ/GreZ zone assignment × VirC/GreC contact
// assignment), an exact branch-and-bound baseline, the full simulation
// substrate used for its evaluation (BRITE-style topologies, delay
// matrices, bandwidth model, client distribution and churn models), and a
// harness that regenerates every table and figure of the paper.
//
// # Bring your own infrastructure
//
// The primary entry point is the Cluster builder: real servers, zones and
// clients with string IDs and measured (or matrix-supplied) RTTs, solved
// in one shot or kept repaired under churn — no synthetic generation
// anywhere (DESIGN.md §9):
//
//	c := dvecap.NewCluster(120) // D = 120 ms
//	c.AddServer("fra", dvecap.ServerSpec{CapacityMbps: 400, RTTs: map[string]float64{"nyc": 82}})
//	c.AddServer("nyc", dvecap.ServerSpec{CapacityMbps: 400})
//	c.AddZone("plaza")
//	c.AddClient("alice", dvecap.ClientSpec{Zone: "plaza", BandwidthMbps: 2,
//		RTTs: map[string]float64{"fra": 18, "nyc": 95}})
//	res, err := c.Solve("GreZ-GreC", dvecap.WithSeed(1))
//
// Solve and Open take functional options (WithWorkers, WithOverflow,
// WithLocalSearchRounds, WithDriftGuard, WithEstimationError, WithSeed).
// Open returns a ClusterSession whose Join/Leave/Move/UpdateDelays —
// all by string ID — stream into the incremental repair planner, and
// ReadClusterJSON/WriteClusterJSON round-trip the same instance through
// a JSON spec (capassign -cluster, -dump). No internal package type
// appears in any exported signature; ExampleCluster and examples/byoi
// show the full workflow.
//
// # Live topology
//
// The topology itself is mutable on an open session (DESIGN.md §10):
// AddServer grows capacity under load (spec.ClientRTTs seeds measured
// delay columns; absent clients start at UnmeasuredRTTMs until
// UpdateServerDelays streams probes in column form), DrainServer
// evacuates a server for a rolling deploy — zones force-move to the
// best available destinations, forwarding contacts re-attach, all in
// O(affected) with no full re-solve, and an in-flight drain survives
// even drift-guard full solves — then RemoveServer retires it or
// UncordonServer returns it; AddZone/RetireZone grow and shrink the
// virtual world, and JoinBatch admits a flash crowd as ONE repair event
// (memberships first, one seeded scan over the touched zones). Dense
// indices renumber on removal (the last server/zone takes the vacated
// index); IDs are stable. A session grown this way is bit-identical to
// an equivalently built static cluster, at every worker count; see
// examples/rollingdeploy and BENCH_topology.json.
//
// AddSpareServer registers a WARM SPARE: the same add path, but the
// server arrives cordoned — delays measured, capacity recorded yet out
// of the utilization denominator, zero load — as pool inventory for an
// autoscaling control loop (DESIGN.md §14) or an operator's later
// UncordonServer, which admits it in O(affected). The director pairs
// these verbs with a hysteresis reconciler (EnableAutoscale; capdirector
// -autoscale) that scales up from the pool on sustained high
// water or pQoS erosion and drains back on sustained low water.
//
// # Traffic-aware placement
//
// Interaction between zones hosted on different servers becomes
// server-to-server broadcast plus a connection handoff per crossing
// avatar. The optional traffic term (DESIGN.md §15) prices it inside
// the same lexicographic objective: register an interaction graph
// (Cluster.SetZoneAdjacency, WithZoneAdjacency, or live through
// ClusterSession.SetZoneAdjacency / AddAdjacencyWeight as zone
// crossings are observed) and a weight λ (SetTrafficWeight,
// WithTrafficWeight); quality becomes RAP cost + λ·cut, where cut is
// the summed weight of interaction edges hosted apart. pQoS keeps
// absolute priority, λ = 0 is bit-identical to the delay-only solver,
// and TrafficCut/TrafficCost read the estimate back on any session. On
// mobility-driven workloads the traffic-aware solver carries ~31% less
// measured cross-server traffic at equal pQoS (BENCH_traffic.json;
// capsim -exp traffic).
//
// # Million-client memory diet
//
// The dense client×server delay matrix is the dominant memory cost at
// scale. WithDelayProvider swaps it for a pluggable representation
// (DESIGN.md §13): CoordDelays stores a network coordinate per client
// plus sparse measured overrides — clients join with ClientSpec.Coord
// and a partial RTTs map, unmeasured pairs read the coordinate
// prediction, and a 1M-client cluster opens in a few hundred MB
// (BENCH_scale.json) — while SharedRowDelays deduplicates identical
// rows with copy-on-write divergence (exact, for clients behind one
// vantage point). DenseDelays remains the default and the reference:
// every provider is bit-identity-tested against the raw matrix under
// churn, topology mutation, fuzzed op-streams and crash recovery, and
// durable sessions snapshot provider state so recovery restores the
// same model and the same bits.
//
// # Synthetic scenarios
//
//	scn, err := dvecap.NewScenario(dvecap.ScenarioParams{Seed: 1})
//	if err != nil { ... }
//	result, err := scn.Assign("GreZ-GreC")
//	if err != nil { ... }
//	fmt.Printf("pQoS %.2f at utilisation %.2f\n", result.PQoS, result.Utilization)
//
// Scenario's solve surfaces are thin adapters over the Cluster engine,
// equivalence-tested bit for bit against the pre-redesign paths.
//
// # Incremental evaluation and hot-path reuse
//
// Beyond the paper, the core package is built for churn-scale
// re-optimisation. A core.Evaluator maintains a solution together with
// every derived quantity the local search scores moves by — per-client
// effective delays, per-server loads, the QoS count and the RAP cost — and
// updates them incrementally: a zone move is scored in O(clients of the
// zone) and a contact switch in O(1), with no cloning and no per-candidate
// allocation. The evaluator also supports churn mutations — clients joining,
// leaving, moving between zones, refreshing their measured delays — each
// O(1) in derived-state maintenance. A core.Workspace (threaded through
// core.Options.Scratch) gives the greedy phases reusable buffers for their
// cost matrices and preference lists, so repeated Solve/Evaluate cycles —
// replication loops, the churn driver's periodic reassignment — allocate
// nothing but the returned assignments. The original clone-and-rescore
// local search is retained inside internal/core as a test oracle, with
// equivalence tests proving both accept identical move sequences.
//
// # Incremental churn repair
//
// Where the paper re-executes the whole two-phase algorithm as the DVE
// evolves (§3.4), the repair subsystem (internal/repair, DESIGN.md §7)
// re-optimises only what churn touched: each join/leave/move/delay-update
// event is answered in O(affected) — greedy contact placement for the
// event's client plus a localized zone-move scan seeded from the zones the
// event changed — while a drift guard triggers an amortized full re-solve
// only when quality decays past a threshold. The sim churn driver
// (ChurnConfig.Repair), the director service and this package's Session
// all run on it:
//
//	sess, err := scn.StartSession("GreZ-GreC", 0)
//	if err != nil { ... }
//	sess.Join(10); sess.Leave(3); sess.Move(5)
//	result, err := sess.Result()
//
// # Parallel sharded search and candidate-delta caching
//
// The zone-move candidate scan — the local search's dominant cost — runs
// through a candidate-delta cache: per-(zone, server) rehosting deltas are
// pure functions of zone-local state, memoised with per-zone dirty bits
// and invalidated only by the mutations that touch a zone (DESIGN.md §8).
// With core.Options.Workers > 1 the scan additionally shards zones across
// a worker pool with a deterministic lowest-zone-wins reduction, and GreZ
// shards its cost-matrix build the same way. Results are bit-identical for
// every worker count — parallelism changes scheduling, never outcomes — so
// the repair planner, the sim churn driver, the director service and the
// capdirector -workers flag all accept it freely.
//
// BenchmarkLocalSearch and BenchmarkRepair exercise a churn-scale scenario
// (50 servers, 500 zones, 100 000 clients — far beyond the paper's
// 2000-client maximum); BENCH_localsearch.json and BENCH_repair.json record
// the measured baselines (700× vs the clone-and-rescore oracle; 292× vs a
// per-event full re-solve), and BENCH_parallel.json the cached+sharded
// search (3.0× over the cache-free rescan on a cold 8-round search, with
// warm rounds ~80× cheaper).
//
// The facade in this package covers common workflows; the full machinery
// (generators, exact solver, churn simulation, experiment harness) lives in
// the internal packages and is exercised through the cmd/ tools.
package dvecap
