package core

// This file retains the original clone-and-rescore local search as an
// unexported oracle. It evaluates every candidate move by deep-copying the
// assignment and re-scoring all clients — O(zones × servers × clients) per
// zone-move scan — which is exactly what the Evaluator-based implementation
// replaces. It exists so the equivalence tests and benchmarks can prove the
// incremental search accepts the same move sequence at a fraction of the
// cost. Do not use it outside tests.

// localSearchOracle is the reference implementation of LocalSearch.
func localSearchOracle(p *Problem, a *Assignment, maxRounds int) *Assignment {
	cur := a.Clone()
	for round := 0; round < maxRounds; round++ {
		improvedZone := tryBestZoneMoveOracle(p, cur)
		improvedContact := tryBestContactSwitchOracle(p, cur)
		if !improvedZone && !improvedContact {
			break
		}
	}
	return cur
}

// evaluateScoreOracle scores an assignment from scratch.
func evaluateScoreOracle(p *Problem, a *Assignment) score {
	var s score
	for j := range p.ClientZones {
		d := a.ClientDelay(p, j)
		if d <= p.D {
			s.withQoS++
		} else {
			s.rapCost += d - p.D
		}
	}
	for _, l := range a.ServerLoads(p) {
		s.load += l
	}
	return s
}

// tryBestZoneMoveOracle applies the single best improving zone move, if
// any, cloning and re-scoring the full assignment per candidate.
func tryBestZoneMoveOracle(p *Problem, a *Assignment) bool {
	m := p.NumServers()
	zoneRT := p.ZoneRT()
	loads := a.ServerLoads(p)
	base := evaluateScoreOracle(p, a)

	bestScore := base
	bestZone, bestServer := -1, -1
	for z := 0; z < p.NumZones; z++ {
		old := a.ZoneServer[z]
		for s := 0; s < m; s++ {
			if s == old {
				continue
			}
			// Feasibility on the destination: it gains the zone's target
			// load (forwarding loads of followed clients stay zero because
			// they land on the new target itself).
			if !almostLE(loads[s]+zoneRT[z], p.ServerCaps[s]) {
				continue
			}
			cand := applyZoneMoveOracle(p, a, z, s)
			cs := evaluateScoreOracle(p, cand)
			if cs.betterThan(bestScore) {
				bestScore, bestZone, bestServer = cs, z, s
			}
		}
	}
	if bestZone < 0 {
		return false
	}
	*a = *applyZoneMoveOracle(p, a, bestZone, bestServer)
	return true
}

// applyZoneMoveOracle returns a copy of a with zone z rehosted on server s;
// clients of z whose contact was the old target follow to s.
func applyZoneMoveOracle(p *Problem, a *Assignment, z, s int) *Assignment {
	out := a.Clone()
	old := out.ZoneServer[z]
	out.ZoneServer[z] = s
	for j, cz := range p.ClientZones {
		if cz == z && out.ClientContact[j] == old {
			out.ClientContact[j] = s
		}
	}
	return out
}

// tryBestContactSwitchOracle applies the single best improving contact
// switch per out-of-bound client, in client order.
func tryBestContactSwitchOracle(p *Problem, a *Assignment) bool {
	m := p.NumServers()
	loads := a.ServerLoads(p)
	improved := false
	for j := range p.ClientZones {
		t := a.Target(p, j)
		cur := a.ClientContact[j]
		curDelay := a.ClientDelay(p, j)
		bestServer := -1
		bestDelay := curDelay
		for s := 0; s < m; s++ {
			if s == cur {
				continue
			}
			var d float64
			if s == t {
				d = p.CSAt(j, t)
			} else {
				if !almostLE(loads[s]+2*p.ClientRT[j], p.ServerCaps[s]) {
					continue
				}
				d = p.CSAt(j, s) + p.SS[s][t]
			}
			if d < bestDelay-1e-12 {
				bestDelay, bestServer = d, s
			}
		}
		// Only accept switches that matter for the objective: gaining QoS,
		// or shrinking the excess of an out-of-bound client. Shaving delay
		// that is already within the bound changes nothing the CAP counts.
		if bestServer >= 0 && (curDelay > p.D) {
			if cur != t {
				loads[cur] -= 2 * p.ClientRT[j]
			}
			if bestServer != t {
				loads[bestServer] += 2 * p.ClientRT[j]
			}
			a.ClientContact[j] = bestServer
			improved = true
		}
	}
	return improved
}
