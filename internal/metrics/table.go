package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned ASCII tables, used by the experiment harness to
// print rows in the same layout as the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf(strings.TrimSpace(format), c)
	}
	t.AddRow(parts...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
