package dvecap

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const specJSON = `{
  "delay_bound_ms": 100,
  "servers": [
    {"id": "fra", "capacity_mbps": 100, "rtts_ms": {"nyc": 80}},
    {"id": "nyc", "capacity_mbps": 100}
  ],
  "zones": ["plaza", "forest"],
  "clients": [
    {"id": "alice", "zone": "plaza", "bandwidth_mbps": 2, "rtts_ms": {"fra": 20, "nyc": 95}},
    {"id": "bruno", "zone": "plaza", "bandwidth_mbps": 2, "rtts_ms": {"fra": 30, "nyc": 90}},
    {"id": "chloe", "zone": "forest", "bandwidth_mbps": 2, "rtt_row_ms": [95, 15]},
    {"id": "diego", "zone": "forest", "bandwidth_mbps": 2, "rtt_row_ms": [90, 25]}
  ]
}`

// TestReadClusterJSON checks the spec maps onto the exact builder calls:
// the loaded cluster must solve identically to the hand-built one.
func TestReadClusterJSON(t *testing.T) {
	c, err := ReadClusterJSON(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := smallCluster(t).Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "json vs builder", got, want)
	for i, id := range want.ClientIDs {
		if got.ClientIDs[i] != id {
			t.Fatalf("client %d named %q, want %q", i, got.ClientIDs[i], id)
		}
	}
}

func TestReadClusterJSONFullMatrix(t *testing.T) {
	spec := strings.Replace(specJSON,
		`{"id": "fra", "capacity_mbps": 100, "rtts_ms": {"nyc": 80}},`,
		`{"id": "fra", "capacity_mbps": 100},`, 1)
	spec = strings.Replace(spec, `"zones":`,
		`"server_rtts_ms": [[0, 80], [80, 0]],
  "zones":`, 1)
	c, err := ReadClusterJSON(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := smallCluster(t).Solve("GreZ-GreC", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "matrix vs pairwise", got, want)
}

func TestReadClusterJSONErrors(t *testing.T) {
	cases := map[string]string{
		"malformed":        `{`,
		"missing pair":     strings.Replace(specJSON, `, "rtts_ms": {"nyc": 80}`, ``, 1),
		"unknown zone":     strings.Replace(specJSON, `"zone": "plaza"`, `"zone": "atlantis"`, 1),
		"zero capacity":    strings.Replace(specJSON, `"capacity_mbps": 100,`, `"capacity_mbps": 0,`, 1),
		"duplicate server": strings.Replace(specJSON, `"id": "nyc"`, `"id": "fra"`, 1),
		"duplicate client": strings.Replace(specJSON, `"id": "bruno"`, `"id": "alice"`, 1),
		"short rtt row":    strings.Replace(specJSON, `[95, 15]`, `[95]`, 1),
		"uncovered client": strings.Replace(specJSON, `{"fra": 20, "nyc": 95}`, `{"fra": 20}`, 1),
		"both rtt forms": strings.Replace(specJSON,
			`"rtt_row_ms": [95, 15]`, `"rtt_row_ms": [95, 15], "rtts_ms": {"fra": 95, "nyc": 15}`, 1),
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadClusterJSON(strings.NewReader(spec)); err == nil {
				t.Fatalf("invalid spec accepted")
			}
		})
	}
}

// TestWriteClusterJSONRoundTrip proves export ∘ import is the identity on
// the validated instance: re-reading a written spec yields the same IDs
// and a bit-identical core problem, and even a second write round-trips
// byte-identically (the export is already in normalized form).
func TestWriteClusterJSONRoundTrip(t *testing.T) {
	orig, err := ReadClusterJSON(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteClusterJSON(&buf); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadClusterJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading written spec: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(reread.ServerIDs(), orig.ServerIDs()) ||
		!reflect.DeepEqual(reread.ZoneIDs(), orig.ZoneIDs()) ||
		!reflect.DeepEqual(reread.ClientIDs(), orig.ClientIDs()) {
		t.Fatal("IDs changed across the round trip")
	}
	po, err := orig.problem()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := reread.problem()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(po, pr) {
		t.Fatal("problem changed across the round trip")
	}
	var buf2 bytes.Buffer
	if err := reread.WriteClusterJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("second write is not byte-identical (export not normalized)")
	}
}

// TestClusterFromProblemJSON wraps an anonymous problem dump (the
// /v1/problem shape) as a cluster with synthetic IDs and round-trips it
// through the cluster-spec form.
func TestClusterFromProblemJSON(t *testing.T) {
	orig, err := ReadClusterJSON(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	po, err := orig.problem()
	if err != nil {
		t.Fatal(err)
	}
	var probJSON bytes.Buffer
	if err := po.WriteJSON(&probJSON); err != nil {
		t.Fatal(err)
	}
	c, err := NewClusterFromProblemJSON(&probJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.ServerIDs(), []string{"s0", "s1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("synthetic server IDs = %v, want %v", got, want)
	}
	var spec bytes.Buffer
	if err := c.WriteClusterJSON(&spec); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadClusterJSON(bytes.NewReader(spec.Bytes()))
	if err != nil {
		t.Fatalf("re-reading problem-derived spec: %v", err)
	}
	pr, err := reread.problem()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(po, pr) {
		t.Fatal("problem changed across the problem→cluster→spec round trip")
	}
}
