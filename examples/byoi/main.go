// Command byoi (bring your own infrastructure) shows the public Cluster
// API end to end on hand-measured data — no synthetic scenario generator
// anywhere: real-looking servers with capacities and inter-server RTTs,
// zones, clients with per-server RTT measurements; one-shot solve; then a
// live session with joins, moves, a leave and a measured-delay refresh
// streaming into the incremental repair planner.
package main

import (
	"fmt"
	"log"

	"dvecap"
)

func main() {
	// A three-region deployment. Inter-server RTTs are measured once per
	// pair (either endpoint may report it).
	c := dvecap.NewCluster(120) // interactivity bound D = 120 ms
	check(c.AddServer("fra", dvecap.ServerSpec{
		CapacityMbps: 400,
		RTTs:         map[string]float64{"nyc": 82, "sgp": 160},
	}))
	check(c.AddServer("nyc", dvecap.ServerSpec{
		CapacityMbps: 400,
		RTTs:         map[string]float64{"sgp": 210},
	}))
	check(c.AddServer("sgp", dvecap.ServerSpec{CapacityMbps: 300}))

	for _, z := range []string{"plaza", "forest", "harbor", "arena"} {
		check(c.AddZone(z))
	}

	// Clients supply their own measured client→server RTTs. In production
	// these come from probes or a King/IDMaps-style estimator.
	join := func(id, zone string, fra, nyc, sgp float64) {
		check(c.AddClient(id, dvecap.ClientSpec{
			Zone:          zone,
			BandwidthMbps: 2,
			RTTs:          map[string]float64{"fra": fra, "nyc": nyc, "sgp": sgp},
		}))
	}
	join("alice", "plaza", 18, 95, 170)
	join("bruno", "plaza", 25, 101, 182)
	join("chloe", "forest", 96, 17, 205)
	join("diego", "forest", 104, 24, 214)
	join("emiko", "harbor", 175, 210, 12)
	join("farid", "harbor", 168, 223, 21)
	join("gwen", "arena", 30, 88, 190)
	join("hiro", "arena", 160, 220, 16)

	// One-shot solve: which server hosts each zone, which server does each
	// client connect through?
	res, err := c.Solve("GreZ-GreC", dvecap.WithSeed(1))
	check(err)
	fmt.Printf("one-shot %s: %d/%d clients within %v ms (pQoS %.2f, utilization %.2f)\n",
		res.Algorithm, res.WithQoS, res.Clients, 120.0, res.PQoS, res.Utilization)
	servers, zones := c.ServerIDs(), c.ZoneIDs()
	for z, s := range res.ZoneServer {
		fmt.Printf("  zone %-6s → %s\n", zones[z], servers[s])
	}

	// Live operation: open a session and keep the solution repaired in
	// O(affected) per event. The drift guard re-solves fully only if
	// quality decays more than 2% below the last full solve.
	sess, err := c.Open("GreZ-GreC", dvecap.WithSeed(1), dvecap.WithDriftGuard(0.02))
	check(err)

	check(sess.Join("ivan", dvecap.ClientSpec{
		Zone:          "plaza",
		BandwidthMbps: 2,
		RTTs:          map[string]float64{"fra": 22, "nyc": 99, "sgp": 176},
	}))
	check(sess.Move("gwen", "plaza"))
	check(sess.Leave("bruno"))

	// A re-probe found alice's path to fra congested: stream the fresh
	// measurements in; the planner re-attaches her and repairs her zone —
	// no full re-solve.
	check(sess.UpdateDelays("alice", map[string]float64{"fra": 140, "nyc": 90}))

	alice, err := sess.Client("alice")
	check(err)
	fmt.Printf("after refresh: alice connects via %s at %.0f ms (QoS %v)\n",
		alice.Contact, alice.DelayMs, alice.QoS)

	st := sess.Stats()
	fmt.Printf("session: %d clients, pQoS %.2f; %d joins, %d moves, %d leaves, %d delay updates; %d full solves\n",
		sess.NumClients(), sess.PQoS(), st.Joins, st.Moves, st.Leaves, st.DelayUpdates, st.FullSolves)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
